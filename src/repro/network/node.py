"""Nodes and links of the SNAP semantic network.

Nodes carry the *permanent* properties stored in the machine's node
table (paper Fig. 4): a color (one of 256, distinguishing the concept
type) and an arithmetic/logic function id used during propagation.
Dynamic state (markers) lives in the machine tables, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Number of node colors (8-bit field, paper Fig. 4).
NUM_COLORS = 256

#: Maximum outgoing relations per node before the knowledge-base
#: pre-processor splits it into subnodes (paper §II-B "Capacity").
MAX_FANOUT = 16


class NodeError(ValueError):
    """Raised for invalid node definitions."""


#: Colors used by the layered linguistic knowledge base of Fig. 1.
#: Values are arbitrary but stable; applications may define their own.
class Color:
    """Symbolic names for commonly used node colors."""

    GENERIC = 0
    LEXICAL = 1            # words of the vocabulary (bottom layer)
    SYNTAX = 2             # syntactic classes (NP, VP, ...)
    SEMANTIC = 3           # semantic classes (animate, event, ...)
    CS_ROOT = 4            # concept-sequence root
    CS_ELEMENT = 5         # concept-sequence element
    CS_AUX = 6             # auxiliary concept sequence (time-case, ...)
    PROPERTY = 7           # property nodes for inheritance workloads
    SUBNODE = 8            # continuation subnodes created by fanout split
    RESULT = 9             # nodes created at runtime to bind results

    _NAMES = {
        0: "generic", 1: "lexical", 2: "syntax", 3: "semantic",
        4: "cs-root", 5: "cs-element", 6: "cs-aux", 7: "property",
        8: "subnode", 9: "result",
    }

    @classmethod
    def name_of(cls, color: int) -> str:
        """Human-readable name for a color id."""
        return cls._NAMES.get(color, f"color-{color}")


@dataclass
class Node:
    """A semantic-network concept node.

    Parameters mirror the permanent fields of the node table:
    ``node_id`` is the physical node-ID index, ``color`` the 8-bit type
    tag, and ``function`` the default arithmetic/logic function id
    applied when markers traverse this node.
    """

    node_id: int
    name: str
    color: int = Color.GENERIC
    function: int = 0
    #: Set for subnodes created by the fanout pre-processor: the id of
    #: the original node they continue.
    parent_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.color < NUM_COLORS:
            raise NodeError(
                f"color {self.color} out of range [0, {NUM_COLORS})"
            )
        if self.node_id < 0:
            raise NodeError(f"negative node id: {self.node_id}")

    @property
    def is_subnode(self) -> bool:
        """True when this node was created by the fanout pre-processor."""
        return self.parent_id is not None


@dataclass(frozen=True)
class Link:
    """A directed, typed, weighted relation between two nodes.

    Matches one slot of the relation table: relation type id,
    destination node id, and a 32-bit floating-point weight.
    """

    source: int
    relation: int
    dest: int
    weight: float = 0.0

    def reversed(self) -> "Link":
        """The same link traversed in the opposite direction."""
        return Link(self.dest, self.relation, self.source, self.weight)
