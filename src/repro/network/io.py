"""Knowledge-base serialization.

A plain-text, line-oriented, diff-friendly format (``.snapkb``) for
saving and loading semantic networks, so domain knowledge bases can be
authored once, versioned, and shared — the workflow the paper implies
when it speaks of a knowledge base "developed" for a domain and loaded
through node-maintenance instructions.

Format (tab-separated; ``#`` comments; order defines node ids)::

    snapkb 1
    node <name> <color> <function> <parent-id|->
    link <source-name> <relation> <dest-name> <weight>
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import IO, Iterable, Union

from .graph import SemanticNetwork

#: Format magic + version on the first non-comment line.
MAGIC = "snapkb"
VERSION = 1


class FormatError(ValueError):
    """Raised for malformed ``.snapkb`` input."""


def _escape(name: str) -> str:
    if "\t" in name or "\n" in name:
        raise FormatError(f"node/relation names may not contain tabs: {name!r}")
    return name


def save_network(network: SemanticNetwork, target: Union[str, Path, IO[str]]) -> None:
    """Write a network to a path or text file object."""
    if isinstance(target, (str, Path)):
        with open(target, "w") as handle:
            save_network(network, handle)
        return
    out = target
    out.write(f"{MAGIC} {VERSION}\n")
    out.write(f"# {network.num_nodes} nodes, {network.num_links} links\n")
    for node in network.nodes():
        parent = "-" if node.parent_id is None else str(node.parent_id)
        out.write(
            f"node\t{_escape(node.name)}\t{node.color}\t"
            f"{node.function}\t{parent}\n"
        )
    for link in network.links():
        out.write(
            f"link\t{_escape(network.node(link.source).name)}\t"
            f"{_escape(network.relations.name_of(link.relation))}\t"
            f"{_escape(network.node(link.dest).name)}\t"
            f"{link.weight!r}\n"
        )


def saves(network: SemanticNetwork) -> str:
    """Serialize to a string."""
    buffer = _io.StringIO()
    save_network(network, buffer)
    return buffer.getvalue()


def load_network(source: Union[str, Path, IO[str]]) -> SemanticNetwork:
    """Read a network from a path or text file object."""
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            return load_network(handle)
    return _parse(source)


def loads(text: str) -> SemanticNetwork:
    """Deserialize from a string."""
    return _parse(_io.StringIO(text))


def _parse(lines: Iterable[str]) -> SemanticNetwork:
    network = SemanticNetwork()
    header_seen = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if not header_seen:
            parts = stripped.split()
            if len(parts) != 2 or parts[0] != MAGIC:
                raise FormatError(f"line {lineno}: missing snapkb header")
            try:
                version = int(parts[1])
            except ValueError:
                raise FormatError(
                    f"line {lineno}: bad version {parts[1]!r}"
                ) from None
            if version != VERSION:
                raise FormatError(
                    f"line {lineno}: unsupported version {version}"
                )
            header_seen = True
            continue
        fields = line.split("\t")
        kind = fields[0].strip()
        try:
            if kind == "node":
                _name, color, function, parent = fields[1:5]
                network.add_node(
                    _name,
                    color=int(color),
                    function=int(function),
                    parent_id=None if parent == "-" else int(parent),
                )
            elif kind == "link":
                source, relation, dest, weight = fields[1:5]
                network.add_link(source, relation, dest, float(weight))
            else:
                raise FormatError(f"unknown record kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise FormatError(f"line {lineno}: {exc}") from exc
    if not header_seen:
        raise FormatError("empty input: missing snapkb header")
    network.validate()
    return network
