"""Multiport memories and the cluster arbiter (paper §III-A).

Functional units within a cluster communicate through four-port
memories with concurrent-read-exclusive-write (CREW) access.  Because
multiport memories allow *concurrent reads of the same location*, a
plain test-and-set is insufficient for critical sections: two
processors can both read the semaphore as free.  The **cluster
arbiter** solves this by serializing access to a semaphore table —
asynchronous requests from each port are granted one at a time,
first-come-first-served, with random priority on simultaneous
requests.

Three traffic types are regulated (§III-A):

* **type-1** — shared variables (bit-markers, locks) in the marker
  processing memory → critical sections through the arbiter;
* **type-2** — PU→MU microinstructions and MU→PU results → separate
  queue areas, single-writer/single-reader, no arbiter involvement;
* **type-3** — inter-cluster data MU→CU via the marker activation
  memory → same single-writer/single-reader discipline.

The DES simulator folds per-access arbitration latency into its task
overhead, but uses these models for queue-capacity accounting (the
"burst absorption" of Fig. 8) and the test suite exercises the CREW
and mutual-exclusion semantics directly.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple


class MemoryError_(RuntimeError):
    """Raised on illegal port usage (shadowing builtin avoided)."""


class MultiportMemory:
    """A word-addressable memory with N independent ports (CREW).

    Reads may proceed concurrently from any ports; at most one port may
    write a given location in the same cycle.  ``begin_cycle`` /
    ``end_cycle`` bracket a set of simultaneous accesses and enforce
    the exclusive-write rule.
    """

    def __init__(self, words: int, ports: int = 4, name: str = "mem") -> None:
        self.name = name
        self.words = words
        self.ports = ports
        self._data: List[int] = [0] * words
        self._parity: List[int] = [0] * words
        self._cycle_writes: Dict[int, int] = {}
        self._in_cycle = False
        self.reads = 0
        self.writes = 0
        self.conflicts = 0
        self.parity_errors = 0

    def begin_cycle(self) -> None:
        """Start a simultaneous-access cycle (resets write set)."""
        self._cycle_writes.clear()
        self._in_cycle = True

    def end_cycle(self) -> None:
        """End the simultaneous-access cycle."""
        self._in_cycle = False
        self._cycle_writes.clear()

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.ports:
            raise MemoryError_(f"{self.name}: bad port {port}")

    def read(self, port: int, address: int) -> int:
        """Concurrent reads are always allowed (CREW)."""
        self._check_port(port)
        self.reads += 1
        return self._data[address]

    def write(self, port: int, address: int, value: int) -> None:
        """Exclusive write: a second writer to the same word in one
        cycle is a protocol violation."""
        self._check_port(port)
        if self._in_cycle:
            owner = self._cycle_writes.get(address)
            if owner is not None and owner != port:
                self.conflicts += 1
                raise MemoryError_(
                    f"{self.name}: write conflict at word {address} "
                    f"(ports {owner} and {port})"
                )
            self._cycle_writes[address] = port
        self.writes += 1
        self._data[address] = value
        self._parity[address] = _parity_of(value)

    # -- fault detection (parity) ----------------------------------------
    def corrupt(self, address: int, bit: int = 0) -> None:
        """Flip one data bit without updating parity (fault injection).

        Models a transfer corrupted between the writing and reading
        port; the stale parity lets :meth:`read_checked` detect it.
        """
        self._data[address] ^= 1 << bit

    def read_checked(self, port: int, address: int) -> Tuple[int, bool]:
        """Read with parity verification: (value, parity_ok).

        A ``False`` flag is a *detected* corruption; the reading unit
        is expected to retry the transfer (the DES charges that retry
        through :class:`repro.machine.faults.RetryPolicy`).
        """
        value = self.read(port, address)
        ok = _parity_of(value) == self._parity[address]
        if not ok:
            self.parity_errors += 1
        return value, ok


def _parity_of(value: int) -> int:
    """Single-bit parity of a stored word."""
    return bin(value & 0xFFFF_FFFF_FFFF_FFFF).count("1") & 1


class ClusterArbiter:
    """FCFS grant of exclusive semaphore-table access (paper Fig. 10).

    ``request(port)`` queues an arbitration request; ``grant()``
    returns the next port to receive access.  Simultaneous requests
    (queued between grants) are ordered randomly, matching *"if
    multiple requests occur simultaneously, then priority is randomly
    assigned"*.
    """

    def __init__(self, ports: int = 4, seed: int = 0) -> None:
        self.ports = ports
        self._rng = random.Random(seed)
        self._waiting: List[int] = []
        self._queue: Deque[int] = deque()
        self._holder: Optional[int] = None
        self._failed: set = set()
        self.grants = 0
        self.forced_releases = 0

    def request(self, port: int) -> None:
        """Queue an arbitration request from a port."""
        if not 0 <= port < self.ports:
            raise MemoryError_(f"arbiter: bad port {port}")
        if port in self._failed:
            raise MemoryError_(f"arbiter: port {port} is marked failed")
        self._waiting.append(port)

    def fail_port(self, port: int) -> None:
        """Mark a port's processor as stuck; recover its arbiter state.

        A hung PU/MU must not wedge the whole cluster: its pending
        requests are purged and, if it holds the grant, the grant is
        force-released so surviving units keep making progress.
        Subsequent requests from the failed port are rejected.
        """
        if not 0 <= port < self.ports:
            raise MemoryError_(f"arbiter: bad port {port}")
        self._failed.add(port)
        self._waiting = [p for p in self._waiting if p != port]
        self._queue = deque(p for p in self._queue if p != port)
        if self._holder == port:
            self._holder = None
            self.forced_releases += 1

    @property
    def failed_ports(self) -> frozenset:
        """Ports marked failed via :meth:`fail_port`."""
        return frozenset(self._failed)

    def _commit_waiting(self) -> None:
        """Randomly order the batch of simultaneous requests."""
        if self._waiting:
            self._rng.shuffle(self._waiting)
            self._queue.extend(self._waiting)
            self._waiting.clear()

    def grant(self) -> Optional[int]:
        """Grant the semaphore table to the next requester (or None)."""
        if self._holder is not None:
            return None
        self._commit_waiting()
        if not self._queue:
            return None
        self._holder = self._queue.popleft()
        self.grants += 1
        return self._holder

    def release(self, port: int) -> None:
        """Release the arbiter grant held by a port."""
        if self._holder != port:
            raise MemoryError_(
                f"arbiter: port {port} released without holding the grant"
            )
        self._holder = None

    @property
    def holder(self) -> Optional[int]:
        """Port currently holding the arbiter grant (or None)."""
        return self._holder


class SemaphoreTable:
    """In-use flags for cluster critical sections, arbiter-protected."""

    def __init__(self, arbiter: ClusterArbiter, sections: int = 16) -> None:
        self.arbiter = arbiter
        self._in_use: List[Optional[int]] = [None] * sections

    def acquire(self, port: int, section: int) -> bool:
        """Try to claim a critical section while holding the grant.

        The caller must have been granted arbiter access; the test and
        update of the in-use flag is therefore race-free.
        """
        if self.arbiter.holder != port:
            raise MemoryError_(
                f"port {port} accessed semaphore table without a grant"
            )
        if self._in_use[section] is None:
            self._in_use[section] = port
            return True
        return False

    def release_section(self, port: int, section: int) -> None:
        """Release a held critical section."""
        if self._in_use[section] != port:
            raise MemoryError_(
                f"port {port} released section {section} it does not hold"
            )
        self._in_use[section] = None

    def owner(self, section: int) -> Optional[int]:
        """Port holding a section (None when free)."""
        return self._in_use[section]


@dataclass
class BoundedQueue:
    """Capacity-accounted FIFO for type-2/type-3 queue areas.

    Single-writer/single-reader queues do not need the arbiter; the DES
    uses this for the marker-processing and marker-activation memory
    regions and records overflow pressure (the Fig. 8 burst-absorption
    requirement: when a burst exceeds buffering, *"the sending
    processor will be blocked"*).
    """

    capacity: int
    name: str = "queue"
    _items: Deque = field(default_factory=deque)
    peak: int = 0
    overflows: int = 0

    def push(self, item) -> bool:
        """Enqueue; returns False (and counts an overflow) when the
        occupancy exceeds capacity.

        Capacity is *soft*: the item is still queued — on the hardware
        the sending MU would block until space frees (§II-C), and the
        simulator surfaces that pressure through the overflow count
        rather than by dropping markers.
        """
        over = len(self._items) >= self.capacity
        if over:
            self.overflows += 1
        self._items.append(item)
        self.peak = max(self.peak, len(self._items))
        return not over

    def pop(self):
        """Dequeue the oldest item; raises when empty."""
        if not self._items:
            raise MemoryError_(f"{self.name}: pop from empty queue")
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """Whether occupancy has reached capacity."""
        return len(self._items) >= self.capacity
