"""Calibration anchors: the paper's published operating points.

The simulator's latency parameters are free constants; what ties them
to the SNAP-1 hardware are the absolute numbers the paper reports
(§II-B, §III-B, §IV).  This module measures each anchor on the current
configuration and reports how far it sits from the published value —
run it after touching :class:`~repro.machine.config.Timing` to see
what drifted.  The test suite asserts every anchor stays within its
tolerance band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines.serial import SerialMachine
from ..isa.instructions import (
    ClearMarker,
    Propagate,
    SearchNode,
    SetMarker,
    binary_marker,
    complex_marker,
)
from ..isa.program import SnapProgram
from ..isa.rules import chain
from ..network.generator import GeneratorSpec, generate_kb
from .config import MachineConfig, Timing
from .icn import HypercubeTopology


@dataclass(frozen=True)
class Anchor:
    """One published operating point and the measured value."""

    name: str
    paper_value: float
    measured: float
    unit: str
    #: Acceptable measured/paper ratio band.
    low: float
    high: float
    source: str

    @property
    def ratio(self) -> float:
        """measured / paper value."""
        if self.paper_value == 0:
            return 1.0
        return self.measured / self.paper_value

    @property
    def within_band(self) -> bool:
        """Whether the measurement sits inside the tolerance band."""
        return self.low <= self.ratio <= self.high

    def render(self) -> str:
        """One-line report row."""
        status = "ok" if self.within_band else "DRIFTED"
        return (
            f"{self.name:<34} paper {self.paper_value:>10.2f} {self.unit:<4}"
            f" measured {self.measured:>10.2f}  (x{self.ratio:.2f}) "
            f"[{status}]  {self.source}"
        )


def measure_anchors(timing: Optional[Timing] = None) -> List[Anchor]:
    """Measure every calibration anchor with the given timing."""
    timing = timing or Timing()
    anchors: List[Anchor] = []

    # --- SET/CLEAR ~ 50 us on a ~1K-node-per-PE workload (§IV) ---------
    network = generate_kb(GeneratorSpec(total_nodes=1000))
    serial = SerialMachine(network, timing=timing)
    report = serial.run(SnapProgram([
        SetMarker(complex_marker(0), 1.0),
        ClearMarker(binary_marker(0)),
    ]))
    set_us = report.traces[0].time_us
    clear_us = report.traces[1].time_us
    anchors.append(Anchor(
        "SET-MARKER (complex, 1K nodes)", 50.0, set_us, "us",
        0.3, 3.0, "SS IV: 'from 50 us for SET/CLEAR operations'",
    ))
    anchors.append(Anchor(
        "CLEAR-MARKER (binary, 1K nodes)", 50.0, clear_us, "us",
        0.2, 2.0, "SS IV: 'from 50 us for SET/CLEAR operations'",
    ))

    # --- PROPAGATE = several hundred us at path length 10-15 (§IV) ------
    chain_net = _chain_network(length=12, width=8)
    serial = SerialMachine(chain_net, timing=timing)
    report = serial.run(SnapProgram([
        SearchNode("head0", complex_marker(0), 0.0),
        Propagate(complex_marker(0), complex_marker(1), chain("r"),
                  "add-weight"),
    ]))
    # All 8 heads share marker0? only head0 marked -> path of 12.
    propagate_us = report.traces[1].time_us
    anchors.append(Anchor(
        "PROPAGATE (12-step path)", 300.0, propagate_us * 8, "us",
        0.1, 3.0, "SS IV: 'several hundred microseconds for PROPAGATE' "
                  "(scaled to the paper's wider waves)",
    ))

    # --- ICN: 80 ns port-to-port x 8 transfers = 0.64 us/hop (§III-B) ---
    anchors.append(Anchor(
        "ICN hop (64-bit message)", 0.64, timing.t_hop, "us",
        0.99, 1.01, "SS III-B: '8-b parallel message-passing in 80-ns "
                    "from port to port', 64-b messages",
    ))

    # --- Hypercube diameter: at most 3 hops for 32 clusters (§III-B) ----
    topology = HypercubeTopology(32)
    diameter = max(
        topology.distance(a, b) for a in range(32) for b in range(32)
    )
    anchors.append(Anchor(
        "hypercube diameter (32 clusters)", 3.0, float(diameter), "hops",
        0.99, 1.01, "SS III-B: 'at most three intermediate hops'",
    ))

    # --- Machine shape (abstract/SS II) ----------------------------------
    full = MachineConfig()
    anchors.append(Anchor(
        "full prototype PEs", 144.0, float(full.total_pes), "PEs",
        0.99, 1.01, "abstract: 'an array of 144 Digital Signal Processors'",
    ))
    anchors.append(Anchor(
        "machine node capacity", 32 * 1024.0, float(full.node_capacity),
        "node", 0.99, 1.01, "SS II-B: '32K semantic network nodes'",
    ))
    return anchors


def _chain_network(length: int, width: int):
    from ..network.graph import SemanticNetwork

    network = SemanticNetwork()
    for w in range(width):
        previous = network.add_node(f"head{w}").node_id
        for i in range(length):
            node = network.add_node(f"c{w}-{i}")
            network.add_link(previous, "r", node.node_id, 1.0)
            previous = node.node_id
    return network


def calibration_report(timing: Optional[Timing] = None) -> str:
    """Render all anchors as a text report."""
    anchors = measure_anchors(timing)
    lines = ["calibration anchors (paper-published operating points):"]
    lines += [f"  {anchor.render()}" for anchor in anchors]
    drifted = [a.name for a in anchors if not a.within_band]
    lines.append(
        "all anchors within tolerance" if not drifted
        else f"DRIFTED: {', '.join(drifted)}"
    )
    return "\n".join(lines)
