"""4-ary hypercube interconnection network topology (paper §III-B).

Clusters are addressed by base-4 digits: the 5-bit cluster address *"is
paired to form modulo-4 fields"* — an L digit selecting one of the four
clusters on a board, an X digit selecting the board column, and a Y
digit selecting the board row.  A CU reaches directly every CU whose
address differs in exactly one digit (they share an L-, X-, or
Y-memory), so routing corrects one digit per hop and any pair is
*"accommodated with at most three intermediate hops"*.

The topology generalizes to any cluster count by using
``ceil(log4(n))`` digits, which the cluster-sweep experiments rely on.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from itertools import permutations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

#: Digit names in routing order (board-local first, then x, then y).
DIMENSION_NAMES = ("L", "X", "Y")

#: Radix of each address digit.
RADIX = 4

#: Bounded LRU capacity shared by the route, fault-aware-route, and
#: path-dimension caches.  Covers every (src, dst) pair up to 64
#: clusters; larger sweeps evict least-recently-used entries.
ROUTE_CACHE_SIZE = 4096

#: Cache sentinel: this (src, dst, order) combination raises
#: :class:`TopologyError` (non-convergent digit order).
_RAISES = object()


class TopologyError(ValueError):
    """Raised for invalid cluster addresses."""


def link_key(a: int, b: int) -> Tuple[int, int]:
    """Canonical (undirected) key for the link between two clusters."""
    return (a, b) if a < b else (b, a)


class HypercubeTopology:
    """Base-4 digit addressing and dimension-ordered routing.

    Hot-path design (see ``docs/PERF.md``): address digits are a table
    precomputed at construction, and the three routing entry points —
    :meth:`route`, :meth:`route_avoiding`, :meth:`path_dimensions` —
    are memoized in bounded LRU caches.  Routing is a pure function of
    ``(src, dst, order)`` (plus the blocked sets, which are part of
    the fault-aware key), so cached paths are always identical to
    recomputed ones; :meth:`note_fault_state` additionally invalidates
    every cache when a topology shared across simulations observes a
    *different* fault pattern than the one it last routed around.
    """

    def __init__(self, num_clusters: int) -> None:
        if num_clusters < 1:
            raise TopologyError("need at least one cluster")
        self.num_clusters = num_clusters
        self.num_digits = 1
        while RADIX ** self.num_digits < num_clusters:
            self.num_digits += 1
        digit_count = self.num_digits
        table = []
        for cluster in range(num_clusters):
            out = []
            value = cluster
            for _ in range(digit_count):
                out.append(value % RADIX)
                value //= RADIX
            table.append(tuple(out))
        #: Precomputed base-4 digits for every cluster id.
        self._digit_table: Tuple[Tuple[int, ...], ...] = tuple(table)
        self._neighbor_table: List[Optional[List[int]]] = [None] * num_clusters
        # Bounded LRU route caches (tuples stored; lists returned).
        self._route_cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._avoid_cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._dims_cache: "OrderedDict[Tuple, Tuple[str, ...]]" = OrderedDict()
        #: Last fault pattern seen by :meth:`note_fault_state`.
        self._fault_state: Tuple[FrozenSet[int], FrozenSet[Tuple[int, int]]] = (
            frozenset(), frozenset()
        )

    def digits(self, cluster: int) -> Tuple[int, ...]:
        """Base-4 address digits, least significant (L) first."""
        self._check(cluster)
        return self._digit_table[cluster]

    def _check(self, cluster: int) -> None:
        if not 0 <= cluster < self.num_clusters:
            raise TopologyError(
                f"cluster {cluster} outside [0, {self.num_clusters})"
            )

    def hamming(self, src: int, dst: int) -> int:
        """Differing address digits (hop count on a full machine)."""
        a, b = self.digits(src), self.digits(dst)
        return sum(1 for x, y in zip(a, b) if x != y)

    def distance(self, src: int, dst: int) -> int:
        """Actual hop count of the routed path."""
        return len(self.route(src, dst))

    def _value(self, digits: List[int]) -> int:
        value = 0
        for digit in reversed(digits):
            value = value * RADIX + digit
        return value

    def route(
        self, src: int, dst: int, order: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Dimension-ordered path from ``src`` to ``dst``.

        Returns the sequence of clusters *after* ``src`` (ending at
        ``dst``); empty when ``src == dst``.  Each step corrects one
        address digit — preferring the lowest (messages use the
        board-local L-memory first, then cross boards in X, then Y),
        or following ``order`` (a permutation of digit indices) when
        one is given; alternate digit orders are how fault-aware
        routing detours around a dead link or cluster.
        On partially populated machines (cluster count not a power of
        4) a correction whose intermediate cluster does not exist is
        skipped in favor of another digit; zeroing a digit is always a
        valid fallback since it strictly decreases the cluster id.

        Memoized: results (including non-convergent orders, which
        raise) are served from a bounded LRU keyed on
        ``(src, dst, order)``.
        """
        self._check(src)
        self._check(dst)
        key = (src, dst) if order is None else (src, dst, tuple(order))
        cache = self._route_cache
        hit = cache.get(key)
        if hit is not None:
            cache.move_to_end(key)
            if hit is _RAISES:
                raise TopologyError(f"routing {src}->{dst} failed to converge")
            return list(hit)
        try:
            path = self._route_uncached(src, dst, order)
        except TopologyError:
            cache[key] = _RAISES
            if len(cache) > ROUTE_CACHE_SIZE:
                cache.popitem(last=False)
            raise
        cache[key] = tuple(path)
        if len(cache) > ROUTE_CACHE_SIZE:
            cache.popitem(last=False)
        return path

    def _route_uncached(
        self, src: int, dst: int, order: Optional[Sequence[int]] = None
    ) -> List[int]:
        dims: Sequence[int] = (
            range(self.num_digits) if order is None else order
        )
        path: List[int] = []
        current = list(self.digits(src))
        target = list(self.digits(dst))
        guard = 0
        while current != target:
            guard += 1
            if guard > 4 * self.num_digits:
                raise TopologyError(
                    f"routing {src}->{dst} failed to converge"
                )
            hop = None
            for dim in dims:
                if current[dim] == target[dim]:
                    continue
                candidate = list(current)
                candidate[dim] = target[dim]
                value = self._value(candidate)
                if value < self.num_clusters:
                    current = candidate
                    hop = value
                    break
            if hop is None:
                # Zero the highest nonzero differing digit: the id
                # strictly decreases, so the hop always exists.
                for dim in reversed(range(self.num_digits)):
                    if current[dim] != target[dim] and current[dim] != 0:
                        candidate = list(current)
                        candidate[dim] = 0
                        current = candidate
                        hop = self._value(candidate)
                        break
            if hop is None:  # pragma: no cover - unreachable
                raise TopologyError(f"no valid hop from {current}")
            path.append(hop)
        return path

    def _path_clear(
        self,
        src: int,
        path: List[int],
        blocked_clusters: FrozenSet[int],
        blocked_links: FrozenSet[Tuple[int, int]],
    ) -> bool:
        """Whether a path avoids every blocked cluster and link."""
        previous = src
        for hop in path:
            if hop in blocked_clusters:
                return False
            if link_key(previous, hop) in blocked_links:
                return False
            previous = hop
        return True

    def route_avoiding(
        self,
        src: int,
        dst: int,
        blocked_clusters: FrozenSet[int] = frozenset(),
        blocked_links: FrozenSet[Tuple[int, int]] = frozenset(),
    ) -> Optional[List[int]]:
        """Fault-aware route around dead clusters and links.

        Tries the canonical dimension order first, then every
        alternate digit order (a detour through a different memory
        dimension), and finally a breadth-first search over the
        surviving adjacency.  Returns ``None`` when the pair is
        unreachable — the caller must treat the message as lost.
        Deterministic: digit orders are tried in lexicographic order
        and the BFS expands neighbors in sorted order.

        Memoized: results (including ``None`` for unreachable pairs)
        are served from a bounded LRU keyed on ``(src, dst,
        blocked_clusters, blocked_links)`` — the blocked sets are part
        of the key, so a stale entry for an outdated fault pattern can
        never be returned.
        """
        self._check(src)
        self._check(dst)
        key = (src, dst, blocked_clusters, blocked_links)
        cache = self._avoid_cache
        hit = cache.get(key, _RAISES)
        if hit is not _RAISES:
            cache.move_to_end(key)
            return None if hit is None else list(hit)
        path = self._route_avoiding_uncached(
            src, dst, blocked_clusters, blocked_links
        )
        cache[key] = None if path is None else tuple(path)
        if len(cache) > ROUTE_CACHE_SIZE:
            cache.popitem(last=False)
        return path

    def _route_avoiding_uncached(
        self,
        src: int,
        dst: int,
        blocked_clusters: FrozenSet[int],
        blocked_links: FrozenSet[Tuple[int, int]],
    ) -> Optional[List[int]]:
        if src == dst:
            return []
        if src in blocked_clusters or dst in blocked_clusters:
            return None
        orders = (
            permutations(range(self.num_digits))
            if self.num_digits <= 4
            else (tuple(range(self.num_digits)),)
        )
        for order in orders:
            try:
                path = self.route(src, dst, order=order)
            except TopologyError:
                continue
            if self._path_clear(src, path, blocked_clusters, blocked_links):
                return path
        # All digit orders blocked: BFS detour over surviving links.
        previous = {src: -1}
        frontier = deque([src])
        while frontier:
            current = frontier.popleft()
            for neighbor in self.neighbors(current):
                if neighbor in previous or neighbor in blocked_clusters:
                    continue
                if link_key(current, neighbor) in blocked_links:
                    continue
                previous[neighbor] = current
                if neighbor == dst:
                    path = [dst]
                    node = current
                    while node != src:
                        path.append(node)
                        node = previous[node]
                    return list(reversed(path))
                frontier.append(neighbor)
        return None

    def neighbors(self, cluster: int) -> List[int]:
        """All clusters directly reachable (one digit differs).

        Memoized per cluster; callers receive a fresh copy.
        """
        self._check(cluster)
        cached = self._neighbor_table[cluster]
        if cached is not None:
            return list(cached)
        digits = list(self.digits(cluster))
        out = []
        for dim in range(self.num_digits):
            for value in range(RADIX):
                if value == digits[dim]:
                    continue
                candidate = list(digits)
                candidate[dim] = value
                cid = 0
                for digit_index in reversed(range(self.num_digits)):
                    cid = cid * RADIX + candidate[digit_index]
                if cid < self.num_clusters:
                    out.append(cid)
        out.sort()
        self._neighbor_table[cluster] = out
        return list(out)

    def dimension_of_hop(self, src: int, dst: int) -> str:
        """Name of the memory (L/X/Y/...) a single hop travels through."""
        a, b = self.digits(src), self.digits(dst)
        diffs = [i for i, (x, y) in enumerate(zip(a, b)) if x != y]
        if len(diffs) != 1:
            raise TopologyError(f"{src}->{dst} is not a single hop")
        dim = diffs[0]
        if dim < len(DIMENSION_NAMES):
            return DIMENSION_NAMES[dim]
        return f"D{dim}"

    def path_dimensions(self, src: int, path: Sequence[int]) -> Tuple[str, ...]:
        """Dimension names (L/X/Y/...) of every hop along ``path``.

        Equivalent to calling :meth:`dimension_of_hop` on each
        consecutive pair starting at ``src``, memoized per (src, path)
        so a cached route's per-hop traffic accounting costs one
        lookup per message instead of two digit decompositions per hop.
        """
        key = (src, tuple(path))
        cache = self._dims_cache
        hit = cache.get(key)
        if hit is not None:
            cache.move_to_end(key)
            return hit
        names = []
        previous = src
        for hop in path:
            names.append(self.dimension_of_hop(previous, hop))
            previous = hop
        result = tuple(names)
        cache[key] = result
        if len(cache) > ROUTE_CACHE_SIZE:
            cache.popitem(last=False)
        return result

    def invalidate_routes(self) -> None:
        """Drop every memoized route/dimension entry."""
        self._route_cache.clear()
        self._avoid_cache.clear()
        self._dims_cache.clear()

    def note_fault_state(
        self,
        blocked_clusters: FrozenSet[int],
        blocked_links: FrozenSet[Tuple[int, int]],
    ) -> None:
        """Record the fault pattern now routing through this topology.

        A topology shared across simulations (one per
        :class:`~repro.machine.machine.SnapMachine`) drops its caches
        whenever the observed fault state *changes*.  Cache keys
        already carry the blocked sets, so this is defense in depth —
        it also bounds cache occupancy when fault patterns churn.
        """
        state = (blocked_clusters, blocked_links)
        if state != self._fault_state:
            self._fault_state = state
            self.invalidate_routes()

    def max_distance(self) -> int:
        """Network diameter in hops."""
        return self.num_digits


@dataclass
class IcnStats:
    """Traffic accounting for the interconnection network."""

    messages: int = 0
    total_hops: int = 0
    hop_histogram: Dict[int, int] = field(default_factory=dict)
    dimension_counts: Dict[str, int] = field(default_factory=dict)
    total_latency: float = 0.0

    def record(self, hops: int, latency: float) -> None:
        """Account one routed message (hops + latency).

        Low-level entry point: the caller is responsible for also
        recording exactly ``hops`` dimension entries, or the
        hop/dimension invariant enforced by :meth:`to_json` breaks.
        Prefer :meth:`record_message`, which cannot get out of sync.
        """
        self.messages += 1
        self.total_hops += hops
        self.hop_histogram[hops] = self.hop_histogram.get(hops, 0) + 1
        self.total_latency += latency

    def record_dimension(self, name: str) -> None:
        """Count one hop through the named L/X/Y memory."""
        self.dimension_counts[name] = self.dimension_counts.get(name, 0) + 1

    def record_message(
        self, dimensions: Sequence[str], latency: float
    ) -> None:
        """Account one routed message atomically.

        ``dimensions`` names the memory of every hop of the *actual*
        path, so per-message hop totals and per-dimension counts are
        updated from the same source and can never disagree — the
        reconciliation of the historical split where ``record`` was
        called per message but ``record_dimension`` per hop.
        """
        self.record(len(dimensions), latency)
        counts = self.dimension_counts
        for name in dimensions:
            counts[name] = counts.get(name, 0) + 1

    @property
    def mean_hops(self) -> float:
        """Mean hops per message."""
        return self.total_hops / self.messages if self.messages else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean per-message latency, in microseconds."""
        return self.total_latency / self.messages if self.messages else 0.0

    def to_json(self) -> Dict[str, object]:
        """JSON-friendly traffic summary, with the hop/dimension
        invariant checked: every counted hop must be attributed to
        exactly one L/X/Y memory."""
        dimension_total = sum(self.dimension_counts.values())
        if self.dimension_counts and dimension_total != self.total_hops:
            raise RuntimeError(
                "ICN accounting out of sync: "
                f"{dimension_total} dimension hops vs "
                f"{self.total_hops} total hops"
            )
        return {
            "messages": self.messages,
            "mean_hops": self.mean_hops,
            "mean_latency_us": self.mean_latency,
            "dimension_counts": dict(self.dimension_counts),
        }
