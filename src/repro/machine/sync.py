"""Tiered barrier synchronization (paper §III-C, Figs. 13–14).

MIMD propagation has no global view: the controller must determine
that (1) all PEs are idle and (2) no markers are in transit.  SNAP-1
solves this with an **AND-tree** carrying a synchronization interlock
signal (SIGI) from every processor's idle line, plus per-**level**
marker message counters: each PE increments its counter on every
process creation and decrements on termination; the barrier for a
level completes when the global sum is zero while all PEs are idle.
Tiering (one counter per overlapped propagation level) prevents false
detection when several PROPAGATE instructions are in flight.

:class:`TieredSynchronizer` implements the protocol exactly (per-PE,
per-level counters); :class:`SyncStats` records the message count at
each barrier, which is the data series of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class SyncError(RuntimeError):
    """Raised when counters go negative (protocol violation)."""


class TieredSynchronizer:
    """Per-PE, per-level produced/consumed counters + AND-tree idle."""

    def __init__(self, num_pes: int) -> None:
        self.num_pes = num_pes
        #: counters[level][pe] = creations - terminations reported.
        self._counters: Dict[int, List[int]] = {}
        self._idle: List[bool] = [True] * num_pes
        self.max_level_seen = -1

    # -- PE-side reporting ------------------------------------------------
    def _check_pe(self, pe: int, level: int) -> None:
        if not 0 <= pe < self.num_pes:
            raise SyncError(
                f"pe {pe} out of range [0, {self.num_pes}) at level {level}"
            )

    def produce(self, pe: int, level: int, count: int = 1) -> None:
        """PE reports ``count`` process creations at a level."""
        self._check_pe(pe, level)
        counters = self._counters.setdefault(level, [0] * self.num_pes)
        counters[pe] += count
        self.max_level_seen = max(self.max_level_seen, level)

    def consume(self, pe: int, level: int, count: int = 1) -> None:
        """PE reports ``count`` process terminations at a level."""
        self._check_pe(pe, level)
        counters = self._counters.setdefault(level, [0] * self.num_pes)
        # Validate before mutating: a rejected over-consumption must
        # not leave the level balance negative.
        if sum(counters) - count < 0:
            raise SyncError(
                f"pe {pe}, level {level}: more terminations than creations"
            )
        counters[pe] -= count

    def set_idle(self, pe: int, idle: bool) -> None:
        """Drive one input of the AND-tree (GP I/O idle line)."""
        self._idle[pe] = idle

    # -- controller-side detection ---------------------------------------
    @property
    def sigi(self) -> bool:
        """The AND-tree output: true when every PE reports idle."""
        return all(self._idle)

    def level_balance(self, level: int) -> int:
        """Global sum of a level's counters (0 = no markers in transit)."""
        return sum(self._counters.get(level, ()))

    def level_complete(self, level: int) -> bool:
        """Barrier condition for one level: idle AND balanced."""
        return self.sigi and self.level_balance(level) == 0

    def all_complete(self) -> bool:
        """Every level balanced and all PEs idle."""
        return self.sigi and all(
            sum(counters) == 0 for counters in self._counters.values()
        )

    def active_levels(self) -> List[int]:
        """Levels with markers still in transit."""
        return sorted(
            level
            for level, counters in self._counters.items()
            if sum(counters) != 0
        )

    def reset_level(self, level: int) -> None:
        """Retire a completed level's counters."""
        if level in self._counters and sum(self._counters[level]) != 0:
            raise SyncError(f"reset of unbalanced level {level}")
        self._counters.pop(level, None)


def barrier_cost(num_pes: int, t_sync_base: float, t_sync_per_pe: float) -> float:
    """Barrier detection latency.

    *"The barrier synchronization overhead is proportional to the
    number of processors, but the dependency is small"* (Fig. 21): the
    AND-tree itself is O(log p) gates, but counter reporting over the
    sync network serializes per PE.
    """
    return t_sync_base + t_sync_per_pe * num_pes


@dataclass
class SyncPoint:
    """One completed barrier: when, which level, traffic since last."""

    index: int
    time: float
    level: int
    messages: int


@dataclass
class SyncStats:
    """Barrier history: the marker-traffic time distribution of Fig. 8."""

    points: List[SyncPoint] = field(default_factory=list)
    _messages_since_last: int = 0

    def count_message(self, count: int = 1) -> None:
        """Record inter-cluster marker activations between barriers."""
        self._messages_since_last += count

    def barrier(self, time: float, level: int) -> SyncPoint:
        """Close out a sync point; resets the interval message count."""
        point = SyncPoint(
            index=len(self.points),
            time=time,
            level=level,
            messages=self._messages_since_last,
        )
        self.points.append(point)
        self._messages_since_last = 0
        return point

    def messages_per_sync(self) -> List[int]:
        """The Fig. 8 series: activation messages at each sync point."""
        return [p.messages for p in self.points]

    @property
    def mean_messages(self) -> float:
        """Mean messages per sync point."""
        series = self.messages_per_sync()
        return sum(series) / len(series) if series else 0.0

    def bursts(self, threshold: int = 30) -> int:
        """Sync intervals whose traffic exceeded ``threshold`` messages."""
        return sum(1 for m in self.messages_per_sync() if m > threshold)
