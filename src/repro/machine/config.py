"""Machine configuration: topology, functional-unit counts, latencies.

Defaults encode the constructed SNAP-1 prototype (paper §II/§III):

* 32 tightly-coupled clusters — *"Presently, 16 clusters are
  implemented in the full five PE configuration while the remaining 16
  clusters have four PE's each, totaling 144 PE's"* — i.e. a PU + CU
  plus 3 or 2 marker units per cluster;
* 32 MHz controller, 25 MHz array clock;
* 4-ary hypercube ICN with 80 ns 8-bit port-to-port transfers and
  64-bit activation messages;
* up to 1024 nodes per cluster, 32 K machine capacity.

All latency parameters are in **microseconds** and are calibrated so
the paper's reported operating points hold: SET/CLEAR ≈ 50 µs,
PROPAGATE several hundred µs at path lengths 10–15 (§IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

from .faults import FaultConfig


class ConfigError(ValueError):
    """Raised for inconsistent machine configurations."""


@dataclass(frozen=True)
class Timing:
    """Latency parameters, in microseconds."""

    # --- controller (32 MHz) -----------------------------------------
    #: PCP program-flow work per SNAP instruction.
    t_pcp: float = 2.0
    #: SCP operand instantiation + global-bus broadcast occupancy.
    t_broadcast: float = 4.0
    # --- cluster pipeline (25 MHz TMS320C30) --------------------------
    #: PU dequeue + opcode decomposition per instruction.
    t_decode: float = 8.0
    #: Fixed MU task pickup overhead (point-to-point control).
    t_task_overhead: float = 2.0
    #: Per 32-bit marker-status word processed.
    t_status_word: float = 0.2
    #: Per node-table row visited (address computation + access).
    t_node_visit: float = 0.5
    #: Per relation-table slot scanned.
    t_slot_scan: float = 0.25
    #: Per marker bit written.
    t_marker_set: float = 0.15
    #: Per floating-point value update (single-cycle FPU + indexing).
    t_fp_op: float = 0.05
    #: Per activation message written to marker activation memory.
    t_msg_write: float = 0.5
    #: Per relation slot written (runtime binding).
    t_link_write: float = 0.5
    # --- interconnection network ---------------------------------------
    #: CU DMA per message between activation memory and ICN memory.
    t_cu_dma: float = 0.5
    #: Port-to-port transfer of a 64-bit message over one hop:
    #: 8 transfers x 80 ns.
    t_hop: float = 0.64
    #: CU store-and-forward handling at an intermediate cluster.
    t_forward: float = 0.3
    # --- synchronization ---------------------------------------------
    #: AND-tree settle + SCP check, base cost.
    t_sync_base: float = 2.0
    #: Additional sync cost per processor (counter reporting); the
    #: paper notes barrier overhead "proportional to the number of
    #: processors, but the dependency is small".
    t_sync_per_pe: float = 0.12
    # --- collection ------------------------------------------------------
    #: Controller setup to address one cluster's dual-port memory.
    t_collect_cluster: float = 15.0
    #: Per result item transferred to the controller.
    t_collect_item: float = 1.5


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description."""

    num_clusters: int = 32
    #: Marker units per cluster: an int, or one entry per cluster.
    mus_per_cluster: Union[int, Tuple[int, ...]] = field(
        default_factory=lambda: tuple([3] * 16 + [2] * 16)
    )
    #: PU instruction queue depth: "up to 64 instructions can be
    #: overlapped".
    instruction_queue_depth: int = 64
    #: Node capacity per cluster (the prototype's table sizing).
    nodes_per_cluster: int = 1024
    #: Enforce the per-cluster capacity when loading a KB.  Off by
    #: default so cluster-sweep studies can hold a fixed KB at every
    #: machine size (the published sweeps require this).
    enforce_capacity: bool = False
    #: Partition policy for KB loading.
    partition_policy: str = "round-robin"
    timing: Timing = field(default_factory=Timing)
    #: Clock speeds, for reporting only (latencies are already in µs).
    controller_mhz: float = 32.0
    array_mhz: float = 25.0
    #: Model per-message wire packing (bfloat16 value truncation).
    pack_messages: bool = False
    #: Fault-injection pattern; ``None`` (or a disabled config) runs
    #: the fault-free simulator with zero overhead.
    faults: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ConfigError("need at least one cluster")
        mus = self.mu_counts()
        if len(mus) != self.num_clusters or any(m < 1 for m in mus):
            raise ConfigError(
                "mus_per_cluster must provide >=1 MU for each cluster"
            )

    def mu_counts(self) -> List[int]:
        """Marker units per cluster, expanded to one entry per cluster."""
        if isinstance(self.mus_per_cluster, int):
            return [self.mus_per_cluster] * self.num_clusters
        counts = list(self.mus_per_cluster)
        if len(counts) < self.num_clusters:
            counts = (counts * self.num_clusters)[: self.num_clusters]
        return counts[: self.num_clusters]

    @property
    def total_mus(self) -> int:
        """Total marker units across clusters."""
        return sum(self.mu_counts())

    @property
    def total_pes(self) -> int:
        """All functional units: PU + CU + MUs per cluster."""
        return self.num_clusters * 2 + self.total_mus

    @property
    def node_capacity(self) -> int:
        """Total node capacity (clusters x nodes/cluster)."""
        return self.num_clusters * self.nodes_per_cluster


def snap1_full() -> MachineConfig:
    """The full 144-PE prototype: 16 five-PE + 16 four-PE clusters."""
    return MachineConfig(
        num_clusters=32,
        mus_per_cluster=tuple([3] * 16 + [2] * 16),
    )


def snap1_16cluster() -> MachineConfig:
    """The 72-processor array used for the §IV experiments.

    16 clusters, 72 PEs total: 8 clusters with 3 MUs (five PEs) and 8
    with 2 MUs (four PEs) gives 16 PU + 16 CU + 40 MU = 72.
    """
    return MachineConfig(
        num_clusters=16,
        mus_per_cluster=tuple([3] * 8 + [2] * 8),
    )


def uniprocessor() -> MachineConfig:
    """A single cluster with one marker unit (serial reference point)."""
    return MachineConfig(num_clusters=1, mus_per_cluster=1)


def cluster_sweep(max_clusters: int = 16) -> List[MachineConfig]:
    """Configurations for the 1→16 cluster sweep of Fig. 18."""
    sizes = [1, 2, 4, 8, 16]
    return [
        MachineConfig(num_clusters=n, mus_per_cluster=_mix(n))
        for n in sizes
        if n <= max_clusters
    ]


def _mix(num_clusters: int) -> Tuple[int, ...]:
    """Half 3-MU, half 2-MU clusters (rounding up the 3-MU share)."""
    threes = (num_clusters + 1) // 2
    return tuple([3] * threes + [2] * (num_clusters - threes))


def processor_sweep() -> List[MachineConfig]:
    """Configurations spanning ~2 to 72 PEs for the Fig. 16/17 sweeps.

    Every configuration keeps the cluster granularity of the prototype;
    the x-axis of the speedup figures is :attr:`MachineConfig.total_pes`.
    """
    configs: List[MachineConfig] = [
        MachineConfig(num_clusters=1, mus_per_cluster=1),   # 3 PEs
        MachineConfig(num_clusters=1, mus_per_cluster=2),   # 4
        MachineConfig(num_clusters=1, mus_per_cluster=3),   # 5
        MachineConfig(num_clusters=2, mus_per_cluster=2),   # 8
        MachineConfig(num_clusters=2, mus_per_cluster=3),   # 10
        MachineConfig(num_clusters=4, mus_per_cluster=2),   # 16
        MachineConfig(num_clusters=4, mus_per_cluster=3),   # 20
        MachineConfig(num_clusters=8, mus_per_cluster=2),   # 32
        MachineConfig(num_clusters=8, mus_per_cluster=3),   # 40
        MachineConfig(num_clusters=16, mus_per_cluster=2),  # 64
        snap1_16cluster(),                                  # 72
    ]
    return configs
