"""Per-cluster hardware model: PU, MU pool, CU, and memory queues.

Each SNAP-1 cluster executes *"three stages of SNAP instruction
processing"* (paper §III-A): the **PU** dequeues broadcast instructions
from the dual-port memory and decomposes them into marker-propagation
tasks; up to three **MUs** execute those tasks asynchronously from the
marker processing memory; the **CU** moves inter-cluster activation
messages between the marker activation memory and the hypercube ICN
memories.

The DES maps each unit onto a FIFO server: the PU and CU are single
servers, the MUs a server pool.  The marker activation memory is a
capacity-accounted queue so burst pressure (Fig. 8) is observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.state import WorkReport
from .config import MachineConfig, Timing
from .des import Server, ServerPool, Simulator
from .memory import BoundedQueue


def work_service_time(work: WorkReport, timing: Timing) -> float:
    """Convert a primitive's work counters into MU busy time (µs)."""
    return (
        timing.t_task_overhead
        + work.words * timing.t_status_word
        + work.nodes * timing.t_node_visit
        + work.slots * timing.t_slot_scan
        + work.sets * timing.t_marker_set
        + work.fp_ops * timing.t_fp_op
        + work.messages * timing.t_msg_write
        + work.links_made * timing.t_link_write
    )


#: Default marker-activation-memory capacity, in messages.  The IDT
#: four-port parts gave "a large buffering capacity"; 256 64-bit
#: messages fit comfortably in a 2K x 32 region.
ACTIVATION_QUEUE_CAPACITY = 256


class ClusterSim:
    """Simulation-side state of one cluster."""

    def __init__(
        self,
        sim: Simulator,
        cluster_id: int,
        num_mus: int,
        config: MachineConfig,
        failed: bool = False,
    ) -> None:
        self.cluster_id = cluster_id
        self.num_mus = num_mus
        #: PU/CU stuck: the cluster is offline (fault injection).  Its
        #: units exist but are never dispatched to.
        self.failed = failed
        self.pu = Server(sim, name=f"pu{cluster_id}")
        self.mus = ServerPool(sim, num_mus, name=f"mu{cluster_id}")
        self.cu = Server(sim, name=f"cu{cluster_id}")
        #: Broadcast instructions awaiting/undergoing PU decode.
        self.instructions_queued = 0
        #: Marker activation memory occupancy (outbound + forwarded).
        self.activation_queue = BoundedQueue(
            ACTIVATION_QUEUE_CAPACITY, name=f"actmem{cluster_id}"
        )

    @property
    def queue_full(self) -> bool:
        """PU circular instruction queue at capacity."""
        return self.instructions_queued >= 64

    @property
    def idle(self) -> bool:
        """All functional units idle (the cluster's AND-tree inputs)."""
        return self.pu.idle and self.mus.idle and self.cu.idle

    def busy_summary(self) -> dict:
        """Busy-time accounting for utilization reports.

        Uses *elapsed* busy time (``busy_time_until``), so a run cut
        off mid-service by a ``budget_us`` abort never counts service
        that had not yet happened; for completed runs the values equal
        the plain ``busy_time`` accumulators exactly.
        """
        now = self.pu.sim.now
        summary = {
            "pu_busy": self.pu.busy_time_until(now),
            "mu_busy": self.mus.busy_time_until(now),
            "cu_busy": self.cu.busy_time_until(now),
            "mu_jobs": self.mus.jobs_done,
            "cu_jobs": self.cu.jobs_done,
            "activation_peak": self.activation_queue.peak,
            "activation_overflows": self.activation_queue.overflows,
        }
        # Only faulty machines carry the extra key, so fault-free
        # reports stay byte-identical to the pre-fault-layer output.
        if self.failed:
            summary["failed"] = True
        return summary


def build_clusters(
    sim: Simulator, config: MachineConfig, faults=None
) -> List[ClusterSim]:
    """Instantiate every cluster of a machine configuration.

    ``faults`` is an optional :class:`repro.machine.faults.FaultInjector`
    whose realized pattern shrinks MU pools (server loss) and marks
    whole clusters offline (PU/CU stuck).
    """
    counts = config.mu_counts()
    failed = frozenset()
    if faults is not None:
        counts = list(faults.effective_mu_counts)
        failed = faults.failed_clusters
    return [
        ClusterSim(sim, cid, mus, config, failed=cid in failed)
        for cid, mus in enumerate(counts)
    ]


def pe_index_of_cluster(config: MachineConfig, cluster_id: int) -> int:
    """Global PE id of a cluster's first unit (for sync reporting).

    PEs are numbered cluster by cluster: PU, MUs..., CU.
    """
    counts = config.mu_counts()
    base = 0
    for cid in range(cluster_id):
        base += 2 + counts[cid]
    return base
