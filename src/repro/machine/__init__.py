"""Discrete-event simulator of the SNAP-1 hardware (paper §II–III).

Component models: clusters of PU/MU/CU functional units over multiport
memories, the global broadcast bus, the 4-ary hypercube interconnect,
tiered barrier synchronization, the dual-processor controller, and the
performance-collection network.  The façade is :class:`SnapMachine`.
"""

from .config import (
    ConfigError,
    MachineConfig,
    Timing,
    cluster_sweep,
    processor_sweep,
    snap1_16cluster,
    snap1_full,
    uniprocessor,
)
from .des import (
    Job,
    Server,
    ServerPool,
    SimulationError,
    Simulator,
    Timeout,
    utilization,
)
from .faults import (
    EVENT_KINDS,
    REGION_EVENT_KINDS,
    FaultConfig,
    FaultConfigError,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultStats,
    RegionEvent,
    RegionSchedule,
    RetryPolicy,
    failed_clusters_for,
)
from .icn import HypercubeTopology, IcnStats, TopologyError, link_key
from .memory import (
    BoundedQueue,
    ClusterArbiter,
    MemoryError_,
    MultiportMemory,
    SemaphoreTable,
)
from .sync import (
    SyncError,
    SyncPoint,
    SyncStats,
    TieredSynchronizer,
    barrier_cost,
)
from .perfnet import (
    EventCode,
    PerfRecord,
    PerformanceCollector,
    RECORD_TRANSFER_US,
)
from .cluster import (
    ACTIVATION_QUEUE_CAPACITY,
    ClusterSim,
    build_clusters,
    pe_index_of_cluster,
    work_service_time,
)
from .report import InstructionTrace, MachineRunReport, OverheadBreakdown
from .simulator import SnapSimulation
from .machine import SnapMachine

__all__ = [
    "ConfigError", "MachineConfig", "Timing", "cluster_sweep",
    "processor_sweep", "snap1_16cluster", "snap1_full", "uniprocessor",
    "Job", "Server", "ServerPool", "SimulationError", "Simulator",
    "Timeout", "utilization",
    "EVENT_KINDS", "REGION_EVENT_KINDS",
    "FaultConfig", "FaultConfigError", "FaultEvent",
    "FaultInjector", "FaultSchedule", "FaultStats",
    "RegionEvent", "RegionSchedule",
    "RetryPolicy", "failed_clusters_for",
    "HypercubeTopology", "IcnStats", "TopologyError", "link_key",
    "BoundedQueue", "ClusterArbiter", "MemoryError_", "MultiportMemory",
    "SemaphoreTable",
    "SyncError", "SyncPoint", "SyncStats", "TieredSynchronizer",
    "barrier_cost",
    "EventCode", "PerfRecord", "PerformanceCollector",
    "RECORD_TRANSFER_US",
    "ACTIVATION_QUEUE_CAPACITY", "ClusterSim", "build_clusters",
    "pe_index_of_cluster", "work_service_time",
    "InstructionTrace", "MachineRunReport", "OverheadBreakdown",
    "SnapSimulation", "SnapMachine",
]
