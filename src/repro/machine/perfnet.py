"""Performance-collection network (paper §III-B).

*"A separate network is desirable for gathering performance data at
minimal levels of perturbation."*  Each PE writes an 8-bit event code
and 24-bit status word to its serial-port register and resumes
execution without delay, while a 2 Mb/s serial link shifts the record
to a central collection board where it is timestamped into a FIFO.

The simulator's instrumentation goes through this module, so every
measurement in the experiment harness is attributable to a monitoring
event, exactly as on the hardware.  Link bandwidth is modeled only as
a reported statistic (the network is independent, so it never perturbs
simulated execution — which is the point of the design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class EventCode:
    """8-bit monitoring event codes."""

    INSTR_ISSUE = 0x01
    INSTR_COMPLETE = 0x02
    TASK_START = 0x10
    TASK_END = 0x11
    MSG_SEND = 0x20
    MSG_RECV = 0x21
    MSG_FORWARD = 0x22
    BARRIER = 0x30
    QUEUE_FULL = 0x40
    COLLECT = 0x50

    _NAMES = {
        0x01: "instr-issue", 0x02: "instr-complete",
        0x10: "task-start", 0x11: "task-end",
        0x20: "msg-send", 0x21: "msg-recv", 0x22: "msg-forward",
        0x30: "barrier", 0x40: "queue-full", 0x50: "collect",
    }

    @classmethod
    def name_of(cls, code: int) -> str:
        """Name for an id (None/generic when unknown)."""
        return cls._NAMES.get(code, f"event-{code:#04x}")


#: Serial link rate: 2 Mb/s; each record is 8 + 24 = 32 bits.
LINK_BITS_PER_SECOND = 2_000_000
RECORD_BITS = 32

#: Time to shift one record out, in microseconds.
RECORD_TRANSFER_US = RECORD_BITS / LINK_BITS_PER_SECOND * 1e6


@dataclass(frozen=True)
class PerfRecord:
    """One timestamped monitoring record at the collection board."""

    time: float          # event timestamp (µs, simulated)
    source: int          # PE / cluster id reporting
    code: int            # 8-bit event code
    status: int = 0      # 24-bit status word

    @property
    def name(self) -> str:
        """Human-readable name."""
        return EventCode.name_of(self.code)


class PerformanceCollector:
    """Central collection board: timestamped FIFO of monitoring events."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[PerfRecord] = []

    def record(self, time: float, source: int, code: int,
               status: int = 0) -> None:
        """Store a monitoring event (no-op when disabled)."""
        if not self.enabled:
            return
        if not 0 <= status < (1 << 24):
            status &= (1 << 24) - 1
        self.records.append(PerfRecord(time, source, code, status))

    # -- analysis -----------------------------------------------------------
    def by_code(self, code: int) -> List[PerfRecord]:
        """All records with the given event code."""
        return [r for r in self.records if r.code == code]

    def histogram(self) -> Dict[str, int]:
        """Event counts by code name."""
        hist: Dict[str, int] = {}
        for r in self.records:
            hist[r.name] = hist.get(r.name, 0) + 1
        return hist

    def timeline(
        self, code: Optional[int] = None
    ) -> List[Tuple[float, int]]:
        """(time, source) pairs, optionally filtered by code."""
        return [
            (r.time, r.source)
            for r in self.records
            if code is None or r.code == code
        ]

    def serial_backlog_us(self) -> float:
        """Worst-case serial transfer time if all records queued at once.

        Reported for fidelity: at 2 Mb/s each 32-bit record takes 16 µs
        on the wire, but the PE *"resumes execution without delay"*, so
        this never feeds back into simulated time.
        """
        return len(self.records) * RECORD_TRANSFER_US

    def clear(self) -> None:
        """Discard all stored records."""
        self.records.clear()
