"""Deterministic fault injection and recovery policies.

SNAP-1's published evaluation assumed a perfectly healthy 144-PE
array; a deployed array machine degrades — DSPs hang, multiport
memories drop transfers, ICN links fail.  This module models partial
failure as a first-class, *seed-driven* subsystem:

* **PU/CU stuck** — whole clusters offline from t=0 (the cluster's
  units never decode, execute, or forward);
* **MU server loss** — individual marker units dead, shrinking a
  cluster's marker bandwidth;
* **ICN link failure** — hypercube port-to-port links dead; routing
  must detour via an alternate digit order (or BFS) or declare the
  pair unreachable;
* **transfer corruption** — a memory-port transfer is corrupted in
  flight; detected (parity) and retried with capped exponential
  backoff under a timeout budget charged in simulated microseconds;
* **transient SCP/bus timeouts** — broadcast occupancy stretched by a
  recovery penalty.

Recovery lives in three layers: per-transfer retry
(:class:`RetryPolicy`), propagation-level checkpoint replay (the
simulator re-issues only the lost activation messages of a PROPAGATE),
and allocator-level remap (semantic-network nodes are evicted off
failed clusters onto survivors before tables are built — see
:func:`repro.network.partition.evict_clusters`).

Everything is derived from :class:`FaultConfig` through named
``random.Random`` streams, so the same seed yields a bit-identical
fault pattern and event trace, and a disabled config never draws from
any stream (the fault layer is provably zero-cost when off).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .icn import HypercubeTopology, link_key


class FaultConfigError(ValueError):
    """Raised for inconsistent fault configurations."""


#: Timeline event kinds understood by :class:`FaultInjector.apply_event`.
#: ``*-fail``/``*-repair`` pairs flip hard state; ``mu-slowdown``,
#: ``corrupt-rate``, and ``marker-drop`` are the *gray* modes — the
#: component keeps answering, just slower or silently wrong.
EVENT_KINDS = frozenset({
    "cluster-fail", "cluster-repair",
    "link-fail", "link-repair",
    "mu-fail", "mu-repair",
    "mu-slowdown", "corrupt-rate", "marker-drop",
})

#: Kinds that name a cluster.
_CLUSTER_KINDS = frozenset({
    "cluster-fail", "cluster-repair", "mu-fail", "mu-repair",
    "mu-slowdown",
})

#: Kinds whose ``value`` is a probability in [0, 1].
_PROB_KINDS = frozenset({"corrupt-rate", "marker-drop"})


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped arrival or repair on the fault timeline.

    ``time_us`` is simulated machine time.  Which operand fields are
    required depends on ``kind``:

    * ``cluster-fail`` / ``cluster-repair`` — ``cluster``;
    * ``link-fail`` / ``link-repair`` — ``link`` (an undirected
      cluster pair);
    * ``mu-fail`` — ``cluster``, optional ``value`` = MUs lost
      (default 1; the cluster always keeps at least one MU);
    * ``mu-repair`` — ``cluster``, optional ``value`` = MUs restored
      (default: back to the configured count);
    * ``mu-slowdown`` — ``cluster``, ``value`` = service multiplier
      (``>= 1``; ``1.0`` repairs the slowdown);
    * ``corrupt-rate`` / ``marker-drop`` — ``value`` = new probability
      in [0, 1] (replaces the static config rate from this instant).
    """

    time_us: float
    kind: str
    cluster: Optional[int] = None
    link: Optional[Tuple[int, int]] = None
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise FaultConfigError(
                f"event time_us must be >= 0: {self.time_us}"
            )
        if self.kind not in EVENT_KINDS:
            raise FaultConfigError(
                f"unknown fault-event kind {self.kind!r}; "
                f"known: {sorted(EVENT_KINDS)}"
            )
        if self.kind in _CLUSTER_KINDS:
            if self.cluster is None or self.cluster < 0:
                raise FaultConfigError(
                    f"{self.kind} needs a cluster id >= 0: {self.cluster}"
                )
        if self.kind in ("link-fail", "link-repair"):
            if (
                self.link is None
                or len(self.link) != 2
                or any(c < 0 for c in self.link)
                or self.link[0] == self.link[1]
            ):
                raise FaultConfigError(
                    f"{self.kind} needs a (a, b) cluster pair with "
                    f"a != b and ids >= 0: {self.link}"
                )
        if self.kind == "mu-slowdown":
            if self.value is None or self.value < 1.0:
                raise FaultConfigError(
                    f"mu-slowdown needs a factor >= 1: {self.value}"
                )
        if self.kind in _PROB_KINDS:
            if self.value is None or not 0.0 <= self.value <= 1.0:
                raise FaultConfigError(
                    f"{self.kind} needs a probability in [0, 1]: "
                    f"{self.value}"
                )
        if self.kind in ("mu-fail", "mu-repair") and self.value is not None:
            if self.value < 1 or int(self.value) != self.value:
                raise FaultConfigError(
                    f"{self.kind} value must be a positive MU count: "
                    f"{self.value}"
                )


@dataclass(frozen=True)
class FaultSchedule:
    """A time-ordered sequence of :class:`FaultEvent` deliveries.

    Events are sorted by ``time_us`` at construction (stably, so
    same-instant events apply in the order given).  The empty schedule
    is the default everywhere and adds no behavior: a config whose
    only non-default field is an empty schedule stays *disabled* and
    byte-identical to the pre-timeline fault layer.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.time_us))
        object.__setattr__(self, "events", ordered)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The no-op schedule."""
        return cls()

    def fault_windows(self) -> Tuple["FaultWindow", ...]:
        """Ground-truth injected-fault intervals, start-time ordered.

        Pairs each degradation onset with its repair: ``*-fail`` →
        matching ``*-repair`` (outage windows per cluster/link);
        ``mu-slowdown`` with factor > 1 opens a gray window that a
        factor-1.0 event closes; ``corrupt-rate``/``marker-drop``
        with probability > 0 open gray windows closed by a rate of 0.
        Unrepaired faults yield open windows (``end_us=None``).
        """
        spans: List[Tuple[float, Optional[float], str, str]] = []
        opens: Dict[str, Tuple[float, str]] = {}
        for event in self.events:
            if event.kind in ("cluster-fail", "mu-fail"):
                target = f"cluster:{event.cluster}"
                opens.setdefault(target, (event.time_us, "outage"))
            elif event.kind in ("cluster-repair", "mu-repair"):
                target = f"cluster:{event.cluster}"
                if target in opens:
                    start, kind = opens.pop(target)
                    spans.append((start, event.time_us, kind, target))
            elif event.kind in ("link-fail", "link-repair"):
                a, b = sorted(event.link)  # type: ignore[misc]
                target = f"link:{a}-{b}"
                if event.kind == "link-fail":
                    opens.setdefault(target, (event.time_us, "outage"))
                elif target in opens:
                    start, kind = opens.pop(target)
                    spans.append((start, event.time_us, kind, target))
            elif event.kind == "mu-slowdown":
                target = f"slowdown:{event.cluster}"
                if event.value and event.value > 1.0:
                    opens.setdefault(target, (event.time_us, "gray"))
                elif target in opens:
                    start, kind = opens.pop(target)
                    spans.append((start, event.time_us, kind, target))
            else:  # corrupt-rate / marker-drop
                target = event.kind
                if event.value and event.value > 0.0:
                    opens.setdefault(target, (event.time_us, "gray"))
                elif target in opens:
                    start, kind = opens.pop(target)
                    spans.append((start, event.time_us, kind, target))
        return _pair_windows(spans, opens)


@dataclass(frozen=True)
class FaultWindow:
    """One ground-truth injected-fault interval, exported for scoring.

    The schedules know *exactly* when each fault began and (if ever)
    was repaired — that exactness is what lets the live-monitoring
    layer be scored instead of merely existing: detection latency and
    alert precision/recall are measured against these windows
    (:mod:`repro.obs.live.score`), not against the monitor's own
    event stream.

    ``end_us is None`` means the fault was never repaired on the
    timeline (open through the run's horizon).  ``kind`` is
    ``outage`` (hard fail/repair pairs) or ``gray`` (slowdown /
    corruption / marker-drop spans); ``target`` names the component,
    e.g. ``region:0``, ``cluster:3``, ``link:1-2``, ``corrupt-rate``.
    """

    start_us: float
    end_us: Optional[float]
    kind: str
    target: str

    def duration_us(self, horizon_us: Optional[float] = None) -> float:
        """Window length; open windows clamp to ``horizon_us``."""
        if self.end_us is not None:
            return self.end_us - self.start_us
        if horizon_us is None:
            raise FaultConfigError(
                f"open fault window {self.target} needs a horizon"
            )
        return max(0.0, horizon_us - self.start_us)

    def as_dict(self) -> Dict[str, object]:
        return {
            "start_us": self.start_us,
            "end_us": self.end_us,
            "kind": self.kind,
            "target": self.target,
        }


def _pair_windows(
    spans: List[Tuple[float, Optional[float], str, str]],
    opens: Dict[str, Tuple[float, str]],
) -> Tuple[FaultWindow, ...]:
    """Close out still-open spans and emit sorted windows."""
    for target, (start, kind) in opens.items():
        spans.append((start, None, kind, target))
    spans.sort(key=lambda s: (s[0], s[3]))
    return tuple(
        FaultWindow(start_us=s, end_us=e, kind=k, target=t)
        for s, e, k, t in spans
    )


#: Region-scoped timeline event kinds (fleet failure domains).
#: ``region-fail``/``region-repair`` flip a whole failure domain;
#: ``region-slowdown`` is the gray mode — every replica in the region
#: keeps answering, ``value`` times slower (``1.0`` repairs it).
REGION_EVENT_KINDS = frozenset({
    "region-fail", "region-repair", "region-slowdown",
})


@dataclass(frozen=True)
class RegionEvent:
    """One timestamped event on a *region* (a fleet failure domain).

    The machine-level :class:`FaultEvent` names clusters and links
    inside one array; a :class:`RegionEvent` names an entire failure
    domain of the serving fleet — every replica placed in ``region``
    is affected at once.  ``time_us`` is fleet (router) clock time.
    """

    time_us: float
    kind: str
    region: int
    #: ``region-slowdown`` only: service multiplier (>= 1; 1.0 repairs).
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise FaultConfigError(
                f"event time_us must be >= 0: {self.time_us}"
            )
        if self.kind not in REGION_EVENT_KINDS:
            raise FaultConfigError(
                f"unknown region-event kind {self.kind!r}; "
                f"known: {sorted(REGION_EVENT_KINDS)}"
            )
        if self.region < 0:
            raise FaultConfigError(
                f"{self.kind} needs a region id >= 0: {self.region}"
            )
        if self.kind == "region-slowdown":
            if self.value is None or self.value < 1.0:
                raise FaultConfigError(
                    f"region-slowdown needs a factor >= 1: {self.value}"
                )
        elif self.value is not None:
            raise FaultConfigError(
                f"{self.kind} takes no value: {self.value}"
            )


@dataclass(frozen=True)
class RegionSchedule:
    """A time-ordered sequence of :class:`RegionEvent` deliveries.

    Mirrors :class:`FaultSchedule`: events sort stably by ``time_us``
    at construction, and the empty schedule is the no-op default.
    """

    events: Tuple[RegionEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.time_us))
        object.__setattr__(self, "events", ordered)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def empty(cls) -> "RegionSchedule":
        """The no-op schedule."""
        return cls()

    def regions(self) -> Tuple[int, ...]:
        """Distinct region ids the schedule touches, ascending."""
        return tuple(sorted({e.region for e in self.events}))

    def for_region(self, region: int) -> Tuple[RegionEvent, ...]:
        """The events of one region, in delivery order."""
        return tuple(e for e in self.events if e.region == region)

    def fault_windows(self) -> Tuple[FaultWindow, ...]:
        """Ground-truth injected-fault intervals, start-time ordered.

        ``region-fail`` → ``region-repair`` pairs become ``outage``
        windows; a ``region-slowdown`` with factor > 1 opens a
        ``gray`` window that a factor-1.0 event closes.  Unrepaired
        faults yield open windows (``end_us=None``).  Targets are
        ``region:<id>`` / ``slowdown:region:<id>``.
        """
        spans: List[Tuple[float, Optional[float], str, str]] = []
        opens: Dict[str, Tuple[float, str]] = {}
        for event in self.events:
            if event.kind == "region-fail":
                target = f"region:{event.region}"
                opens.setdefault(target, (event.time_us, "outage"))
            elif event.kind == "region-repair":
                target = f"region:{event.region}"
                if target in opens:
                    start, kind = opens.pop(target)
                    spans.append((start, event.time_us, kind, target))
            else:  # region-slowdown
                target = f"slowdown:region:{event.region}"
                if event.value and event.value > 1.0:
                    opens.setdefault(target, (event.time_us, "gray"))
                elif target in opens:
                    start, kind = opens.pop(target)
                    spans.append((start, event.time_us, kind, target))
        return _pair_windows(spans, opens)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for detected-corruption retries.

    A corrupted transfer is re-attempted after ``base_backoff_us``,
    doubling (``backoff_factor``) per attempt up to ``max_backoff_us``.
    Recovery stops when ``max_retries`` attempts are spent or the
    per-transfer ``timeout_budget_us`` of simulated recovery time
    elapses, whichever comes first; the transfer is then declared
    failed and handed to the next recovery layer (checkpoint replay).
    """

    max_retries: int = 4
    base_backoff_us: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_us: float = 8.0
    timeout_budget_us: float = 50.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultConfigError(
                f"max_retries must be >= 0: {self.max_retries}"
            )
        for name in ("base_backoff_us", "max_backoff_us", "timeout_budget_us"):
            value = getattr(self, name)
            if value < 0:
                raise FaultConfigError(f"{name} must be >= 0: {value}")
        if self.backoff_factor < 1.0:
            raise FaultConfigError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based), in µs."""
        return min(
            self.base_backoff_us * self.backoff_factor ** attempt,
            self.max_backoff_us,
        )


@dataclass(frozen=True)
class FaultConfig:
    """Seed-driven description of the injected fault pattern.

    All probabilities are in [0, 1].  The default instance (and
    :meth:`disabled`) injects nothing, and the simulator bypasses the
    fault layer entirely for it.
    """

    #: Root seed; every fault decision derives from it deterministically.
    seed: int = 0
    #: Fraction of clusters whose PU/CU are stuck (cluster offline).
    failed_cluster_fraction: float = 0.0
    #: Explicit failed-cluster ids (overrides the fraction when set).
    failed_clusters: Optional[Tuple[int, ...]] = None
    #: Per-MU probability of server loss (first MU of a cluster is spared
    #: so surviving clusters keep at least one marker unit).
    mu_loss_prob: float = 0.0
    #: Per-link probability of an ICN port/link failure.
    link_fail_prob: float = 0.0
    #: Per-hop probability of a detected memory-port transfer corruption.
    transfer_corrupt_prob: float = 0.0
    #: Per-delivery probability an ICN message is *silently* dropped at
    #: its destination (gray: no parity error, no retry, no replay —
    #: the answer is simply incomplete and only an integrity audit can
    #: tell).
    marker_drop_prob: float = 0.0
    #: Uniform MU service multiplier (gray slow-but-alive mode);
    #: ``1.0`` = full speed.
    mu_slowdown_factor: float = 1.0
    #: Per-broadcast probability of a transient SCP/global-bus timeout.
    scp_timeout_prob: float = 0.0
    #: Recovery penalty of one SCP/bus timeout, in µs.
    scp_timeout_penalty_us: float = 25.0
    #: Per-transfer retry policy.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Re-issue the lost work of a PROPAGATE from its marker checkpoint.
    checkpoint_recovery: bool = True
    #: Maximum checkpoint replay rounds per PROPAGATE.
    max_replay_rounds: int = 2
    #: Evict semantic-network nodes off failed clusters onto survivors.
    remap_nodes: bool = True
    #: Timed arrival/repair events delivered mid-run (see
    #: :class:`FaultSchedule`; empty = the static-only behavior).
    schedule: FaultSchedule = field(default_factory=FaultSchedule)

    def __post_init__(self) -> None:
        for name in (
            "failed_cluster_fraction", "mu_loss_prob", "link_fail_prob",
            "transfer_corrupt_prob", "marker_drop_prob",
            "scp_timeout_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultConfigError(f"{name} must be in [0, 1]: {value}")
        if self.scp_timeout_penalty_us < 0:
            raise FaultConfigError(
                "scp_timeout_penalty_us must be >= 0: "
                f"{self.scp_timeout_penalty_us}"
            )
        if self.max_replay_rounds < 0:
            raise FaultConfigError(
                f"max_replay_rounds must be >= 0: {self.max_replay_rounds}"
            )
        if self.failed_clusters is not None and any(
            c < 0 for c in self.failed_clusters
        ):
            raise FaultConfigError(
                f"failed_clusters ids must be >= 0: {self.failed_clusters}"
            )
        if self.mu_slowdown_factor < 1.0:
            raise FaultConfigError(
                "mu_slowdown_factor must be >= 1: "
                f"{self.mu_slowdown_factor}"
            )
        if not isinstance(self.schedule, FaultSchedule):
            raise FaultConfigError(
                f"schedule must be a FaultSchedule: {self.schedule!r}"
            )

    @classmethod
    def disabled(cls) -> "FaultConfig":
        """A configuration that injects nothing at all."""
        return cls()

    @property
    def enabled(self) -> bool:
        """Whether any fault can actually occur under this config."""
        return bool(
            self.failed_clusters
            or self.failed_cluster_fraction > 0
            or self.mu_loss_prob > 0
            or self.link_fail_prob > 0
            or self.transfer_corrupt_prob > 0
            or self.marker_drop_prob > 0
            or self.mu_slowdown_factor > 1.0
            or self.scp_timeout_prob > 0
            or self.schedule.events
        )


def _stream(config: FaultConfig, name: str) -> random.Random:
    """A named, seed-derived RNG stream (independent per fault type)."""
    return random.Random(f"{config.seed}/{name}")


def failed_clusters_for(
    config: FaultConfig, num_clusters: int
) -> FrozenSet[int]:
    """The deterministic set of offline clusters for a machine size.

    Shared by the allocator-level remap (at machine construction) and
    the simulator (at run time) so both agree on which clusters are
    dead.  At least one cluster always survives.  Explicit ids outside
    ``[0, num_clusters)`` are a configuration error — silently
    dropping them would realize a different pattern than the one the
    caller asked for.
    """
    if config.failed_clusters is not None:
        out_of_range = sorted(
            c for c in config.failed_clusters
            if not 0 <= c < num_clusters
        )
        if out_of_range:
            raise FaultConfigError(
                f"failed_clusters ids out of range for a "
                f"{num_clusters}-cluster machine: {out_of_range}"
            )
        bad = set(config.failed_clusters)
    else:
        count = int(round(config.failed_cluster_fraction * num_clusters))
        if count <= 0:
            return frozenset()
        bad = set(
            _stream(config, "clusters").sample(range(num_clusters), count)
        )
    if len(bad) >= num_clusters:
        bad = set(sorted(bad)[: num_clusters - 1])
    return frozenset(bad)


@dataclass
class FaultStats:
    """Counters of injected faults and recovery work for run reports."""

    clusters_failed: int = 0
    mus_lost: int = 0
    links_failed: int = 0
    nodes_remapped: int = 0
    scp_timeouts: int = 0
    transfer_retries: int = 0
    transfer_failures: int = 0
    retry_time_us: float = 0.0
    messages_rerouted: int = 0
    messages_unreachable: int = 0
    replays: int = 0
    replayed_messages: int = 0
    messages_lost: int = 0
    # -- timeline counters (PR 6) -----------------------------------------
    #: Schedule events actually applied during the run.
    timeline_events: int = 0
    clusters_repaired: int = 0
    links_repaired: int = 0
    mus_restored: int = 0
    #: Messages silently dropped at delivery (gray — see
    #: :meth:`query_visible_failures`, which excludes them).
    markers_dropped: int = 0
    #: Extra MU service charged by gray slowdown factors, in µs.
    slowdown_us: float = 0.0

    #: Fields emitted by :meth:`as_dict` only when nonzero, so reports
    #: of schedule-free runs stay byte-identical to pre-timeline
    #: builds.  Every non-legacy field added to this dataclass must be
    #: listed here (a sync test enforces it).
    _CONDITIONAL_FIELDS = (
        "timeline_events", "clusters_repaired", "links_repaired",
        "mus_restored", "markers_dropped", "slowdown_us",
    )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (JSON-friendly).

        The original (static-era) counters are always present; the
        timeline counters appear only when nonzero, so a run without
        schedule or gray activity dumps exactly the legacy record.
        """
        record = {
            "clusters_failed": self.clusters_failed,
            "mus_lost": self.mus_lost,
            "links_failed": self.links_failed,
            "nodes_remapped": self.nodes_remapped,
            "scp_timeouts": self.scp_timeouts,
            "transfer_retries": self.transfer_retries,
            "transfer_failures": self.transfer_failures,
            "retry_time_us": self.retry_time_us,
            "messages_rerouted": self.messages_rerouted,
            "messages_unreachable": self.messages_unreachable,
            "replays": self.replays,
            "replayed_messages": self.replayed_messages,
            "messages_lost": self.messages_lost,
        }
        for name in self._CONDITIONAL_FIELDS:
            value = getattr(self, name)
            if value:
                record[name] = value
        return record

    def total_injected(self) -> int:
        """Aggregate count of fault events that actually occurred."""
        return (
            self.clusters_failed + self.mus_lost + self.links_failed
            + self.scp_timeouts + self.transfer_retries
        )

    def query_visible_failures(self) -> int:
        """Damage a *query* can observe in its answer.

        Retries, reroutes, and replays are recovered transparently —
        the result set is intact, only slower.  Lost or unreachable
        messages (and transfers that exhausted their retry budget) mean
        markers never arrived: the answer is silently incomplete.  The
        serving host's circuit breakers treat any nonzero value as a
        failed attempt on that replica.

        ``markers_dropped`` is deliberately **excluded**: a silent drop
        produces no error signal of any kind (that is what makes it
        gray), so neither the query nor the breaker can see it — only
        the host's answer-integrity audit can
        (:mod:`repro.host.health`).
        """
        return (
            self.messages_lost
            + self.messages_unreachable
            + self.transfer_failures
        )


class FaultInjector:
    """Realized fault pattern for one machine + runtime sampling.

    Construction fixes the *static* pattern (failed clusters, lost MUs,
    dead links) from the config seed; :meth:`transfer_corrupted`,
    :meth:`scp_timeout`, and :meth:`marker_dropped` sample the
    *transient* faults from independent streams.  Because the DES is
    deterministic, the sampling order — and therefore the full event
    trace — is bit-reproducible for a given seed.

    On top of the static pattern the injector carries the **live world
    state** the fault timeline mutates: the currently offline clusters
    and dead links (:attr:`blocked_clusters` / :attr:`blocked_links`,
    initialized from the static pattern), the current MU counts, the
    per-cluster gray slowdown factors, and the current corruption/drop
    probabilities.  :meth:`apply_event` advances that state one
    :class:`FaultEvent` at a time; with an empty schedule nothing ever
    mutates and the injector behaves exactly like the static-era one.
    """

    def __init__(
        self,
        config: FaultConfig,
        num_clusters: int,
        mu_counts: Sequence[int],
        topology: Optional[HypercubeTopology] = None,
    ) -> None:
        if len(mu_counts) != num_clusters:
            raise FaultConfigError(
                "mu_counts must provide one entry per cluster"
            )
        for event in config.schedule.events:
            referenced = []
            if event.cluster is not None:
                referenced.append(event.cluster)
            if event.link is not None:
                referenced.extend(event.link)
            bad = sorted(
                c for c in referenced if not 0 <= c < num_clusters
            )
            if bad:
                raise FaultConfigError(
                    f"schedule event {event.kind!r} at "
                    f"t={event.time_us} names cluster ids out of range "
                    f"for a {num_clusters}-cluster machine: {bad}"
                )
        self.cfg = config
        self.num_clusters = num_clusters
        self.stats = FaultStats()
        self.failed_clusters: FrozenSet[int] = failed_clusters_for(
            config, num_clusters
        )
        self.stats.clusters_failed = len(self.failed_clusters)

        # MU server loss on surviving clusters (first MU spared).
        mu_rng = _stream(config, "mus")
        effective: List[int] = []
        for cid, count in enumerate(mu_counts):
            if cid in self.failed_clusters or config.mu_loss_prob <= 0:
                effective.append(count)
                continue
            lost = sum(
                1 for _ in range(count - 1)
                if mu_rng.random() < config.mu_loss_prob
            )
            self.stats.mus_lost += lost
            effective.append(count - lost)
        self.effective_mu_counts: Tuple[int, ...] = tuple(effective)
        #: Configured (pre-loss) MU counts, kept for observability.
        self.configured_mu_counts: Tuple[int, ...] = tuple(mu_counts)

        # ICN link failures over the topology's undirected adjacency.
        # A shared topology (one per machine) is reused for the
        # enumeration; ``neighbors`` is memoized and deterministic, so
        # the RNG draw order — and the realized pattern — is identical
        # to a freshly built topology.
        self.dead_links: FrozenSet[Tuple[int, int]] = frozenset()
        if config.link_fail_prob > 0:
            link_rng = _stream(config, "links")
            topo = (
                topology
                if topology is not None
                else HypercubeTopology(num_clusters)
            )
            dead: Set[Tuple[int, int]] = set()
            for a in range(num_clusters):
                for b in topo.neighbors(a):
                    if b <= a:
                        continue
                    if link_rng.random() < config.link_fail_prob:
                        dead.add(link_key(a, b))
            self.dead_links = frozenset(dead)
            self.stats.links_failed = len(self.dead_links)

        self._transfer_rng = _stream(config, "transfer")
        self._scp_rng = _stream(config, "scp")

        # -- live world state (mutated only by apply_event) ---------------
        self.schedule = config.schedule
        self._offline: Set[int] = set(self.failed_clusters)
        self._dead: Set[Tuple[int, int]] = set(self.dead_links)
        # Routing keys: with an empty schedule these stay the *same*
        # frozenset objects as the static pattern for the whole run.
        self._blocked_clusters: FrozenSet[int] = self.failed_clusters
        self._blocked_links: FrozenSet[Tuple[int, int]] = self.dead_links
        self._mu_current: List[int] = list(self.effective_mu_counts)
        self._slowdowns: Dict[int, float] = {}
        self._corrupt_prob = config.transfer_corrupt_prob
        self._drop_prob = config.marker_drop_prob
        # The drop stream is constructed only when a drop can ever
        # happen, preserving the zero-RNG contract for configs that
        # never sample it.
        self._drop_rng: Optional[random.Random] = None
        events = config.schedule.events
        #: Whether transfer corruption can occur at any point of the
        #: run (static rate or a corrupt-rate event raising it) — the
        #: simulator keys per-transfer recovery records on this.
        self.corruption_possible = config.transfer_corrupt_prob > 0 or any(
            e.kind == "corrupt-rate" and e.value > 0 for e in events
        )
        #: Whether a silent marker drop can ever occur.
        self.drops_possible = config.marker_drop_prob > 0 or any(
            e.kind == "marker-drop" and e.value > 0 for e in events
        )
        if self.drops_possible:
            self._drop_rng = _stream(config, "drop")
        #: Whether any MU slowdown can ever apply.
        self.slowdown_possible = config.mu_slowdown_factor > 1.0 or any(
            e.kind == "mu-slowdown" and e.value > 1.0 for e in events
        )
        if topology is not None:
            # Defense in depth for shared route caches: a *different*
            # fault pattern than the last one routed through this
            # topology drops every memoized path.
            topology.note_fault_state(self.failed_clusters, self.dead_links)

    # -- observability ----------------------------------------------------
    def emit_injection_events(self, tracer, track: int, ts: float = 0.0) -> None:
        """Emit the realized *static* fault pattern as trace instants.

        One instant per offline cluster, per dead link, and (when any
        MU was lost) one summarizing instant per affected cluster —
        all at ``ts`` (machine construction time) on the given tracer
        track, so a Perfetto timeline shows what the run started out
        degraded with before any recovery event fires.
        """
        for cid in sorted(self.failed_clusters):
            tracer.instant(track, "cluster-offline", ts, cluster=cid)
        for a, b in sorted(self.dead_links):
            tracer.instant(track, "link-dead", ts, link=f"{a}-{b}")
        if self.stats.mus_lost:
            for cid, effective in enumerate(self.effective_mu_counts):
                lost = self.configured_mu_counts[cid] - effective
                if lost > 0 and cid not in self.failed_clusters:
                    tracer.instant(
                        track, "mus-lost", ts,
                        cluster=cid, lost=lost, surviving_mus=effective,
                    )

    # -- runtime sampling -------------------------------------------------
    def transfer_corrupted(self) -> bool:
        """Sample one memory-port transfer: corrupted in flight?

        Uses the *current* corruption rate (the static config rate
        until a ``corrupt-rate`` event replaces it).  A zero rate
        draws nothing, so sample sequences stay aligned across runs
        that share a seed and schedule.
        """
        if self._corrupt_prob <= 0:
            return False
        return self._transfer_rng.random() < self._corrupt_prob

    def marker_dropped(self) -> bool:
        """Sample one ICN delivery: silently dropped?"""
        if self._drop_prob <= 0:
            return False
        return self._drop_rng.random() < self._drop_prob

    def scp_timeout(self) -> bool:
        """Sample one broadcast: transient SCP/bus timeout?"""
        if self.cfg.scp_timeout_prob <= 0:
            return False
        return self._scp_rng.random() < self.cfg.scp_timeout_prob

    # -- live world state -------------------------------------------------
    @property
    def blocked_clusters(self) -> FrozenSet[int]:
        """Clusters routing must avoid *right now*."""
        return self._blocked_clusters

    @property
    def blocked_links(self) -> FrozenSet[Tuple[int, int]]:
        """Links routing must avoid *right now*."""
        return self._blocked_links

    @property
    def current_mu_counts(self) -> Tuple[int, ...]:
        """Per-cluster MU counts as of the last applied event."""
        return tuple(self._mu_current)

    def slowdown_for(self, cluster: int) -> float:
        """Current gray service multiplier for one cluster's MUs."""
        return self._slowdowns.get(cluster, self.cfg.mu_slowdown_factor)

    def apply_event(self, event: FaultEvent) -> bool:
        """Advance the live world state by one timeline event.

        Idempotent per state bit (failing an offline cluster or
        repairing a healthy one is a no-op), and a ``cluster-fail``
        that would take the *last* online cluster down is ignored —
        the machine always keeps one survivor, mirroring
        :func:`failed_clusters_for`.

        Returns ``True`` when the routing-visible state (offline
        clusters or dead links) changed, so the caller can refresh
        route caches and dispatch sets.
        """
        self.stats.timeline_events += 1
        kind = event.kind
        routing_changed = False
        if kind == "cluster-fail":
            cid = event.cluster
            if (
                cid not in self._offline
                and len(self._offline) < self.num_clusters - 1
            ):
                self._offline.add(cid)
                self.stats.clusters_failed += 1
                routing_changed = True
        elif kind == "cluster-repair":
            if event.cluster in self._offline:
                self._offline.discard(event.cluster)
                self.stats.clusters_repaired += 1
                routing_changed = True
        elif kind == "link-fail":
            key = link_key(*event.link)
            if key not in self._dead:
                self._dead.add(key)
                self.stats.links_failed += 1
                routing_changed = True
        elif kind == "link-repair":
            key = link_key(*event.link)
            if key in self._dead:
                self._dead.discard(key)
                self.stats.links_repaired += 1
                routing_changed = True
        elif kind == "mu-fail":
            cid = event.cluster
            lost = 1 if event.value is None else int(event.value)
            current = self._mu_current[cid]
            new = max(1, current - lost)
            if new != current:
                self.stats.mus_lost += current - new
                self._mu_current[cid] = new
        elif kind == "mu-repair":
            cid = event.cluster
            current = self._mu_current[cid]
            configured = self.configured_mu_counts[cid]
            if event.value is None:
                new = configured
            else:
                new = min(configured, current + int(event.value))
            if new > current:
                self.stats.mus_restored += new - current
                self._mu_current[cid] = new
        elif kind == "mu-slowdown":
            self._slowdowns[event.cluster] = event.value
        elif kind == "corrupt-rate":
            self._corrupt_prob = event.value
        elif kind == "marker-drop":
            self._drop_prob = event.value
        if routing_changed:
            self._blocked_clusters = frozenset(self._offline)
            self._blocked_links = frozenset(self._dead)
        return routing_changed
