"""Deterministic fault injection and recovery policies.

SNAP-1's published evaluation assumed a perfectly healthy 144-PE
array; a deployed array machine degrades — DSPs hang, multiport
memories drop transfers, ICN links fail.  This module models partial
failure as a first-class, *seed-driven* subsystem:

* **PU/CU stuck** — whole clusters offline from t=0 (the cluster's
  units never decode, execute, or forward);
* **MU server loss** — individual marker units dead, shrinking a
  cluster's marker bandwidth;
* **ICN link failure** — hypercube port-to-port links dead; routing
  must detour via an alternate digit order (or BFS) or declare the
  pair unreachable;
* **transfer corruption** — a memory-port transfer is corrupted in
  flight; detected (parity) and retried with capped exponential
  backoff under a timeout budget charged in simulated microseconds;
* **transient SCP/bus timeouts** — broadcast occupancy stretched by a
  recovery penalty.

Recovery lives in three layers: per-transfer retry
(:class:`RetryPolicy`), propagation-level checkpoint replay (the
simulator re-issues only the lost activation messages of a PROPAGATE),
and allocator-level remap (semantic-network nodes are evicted off
failed clusters onto survivors before tables are built — see
:func:`repro.network.partition.evict_clusters`).

Everything is derived from :class:`FaultConfig` through named
``random.Random`` streams, so the same seed yields a bit-identical
fault pattern and event trace, and a disabled config never draws from
any stream (the fault layer is provably zero-cost when off).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .icn import HypercubeTopology, link_key


class FaultConfigError(ValueError):
    """Raised for inconsistent fault configurations."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for detected-corruption retries.

    A corrupted transfer is re-attempted after ``base_backoff_us``,
    doubling (``backoff_factor``) per attempt up to ``max_backoff_us``.
    Recovery stops when ``max_retries`` attempts are spent or the
    per-transfer ``timeout_budget_us`` of simulated recovery time
    elapses, whichever comes first; the transfer is then declared
    failed and handed to the next recovery layer (checkpoint replay).
    """

    max_retries: int = 4
    base_backoff_us: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_us: float = 8.0
    timeout_budget_us: float = 50.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultConfigError(
                f"max_retries must be >= 0: {self.max_retries}"
            )
        for name in ("base_backoff_us", "max_backoff_us", "timeout_budget_us"):
            value = getattr(self, name)
            if value < 0:
                raise FaultConfigError(f"{name} must be >= 0: {value}")
        if self.backoff_factor < 1.0:
            raise FaultConfigError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based), in µs."""
        return min(
            self.base_backoff_us * self.backoff_factor ** attempt,
            self.max_backoff_us,
        )


@dataclass(frozen=True)
class FaultConfig:
    """Seed-driven description of the injected fault pattern.

    All probabilities are in [0, 1].  The default instance (and
    :meth:`disabled`) injects nothing, and the simulator bypasses the
    fault layer entirely for it.
    """

    #: Root seed; every fault decision derives from it deterministically.
    seed: int = 0
    #: Fraction of clusters whose PU/CU are stuck (cluster offline).
    failed_cluster_fraction: float = 0.0
    #: Explicit failed-cluster ids (overrides the fraction when set).
    failed_clusters: Optional[Tuple[int, ...]] = None
    #: Per-MU probability of server loss (first MU of a cluster is spared
    #: so surviving clusters keep at least one marker unit).
    mu_loss_prob: float = 0.0
    #: Per-link probability of an ICN port/link failure.
    link_fail_prob: float = 0.0
    #: Per-hop probability of a detected memory-port transfer corruption.
    transfer_corrupt_prob: float = 0.0
    #: Per-broadcast probability of a transient SCP/global-bus timeout.
    scp_timeout_prob: float = 0.0
    #: Recovery penalty of one SCP/bus timeout, in µs.
    scp_timeout_penalty_us: float = 25.0
    #: Per-transfer retry policy.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Re-issue the lost work of a PROPAGATE from its marker checkpoint.
    checkpoint_recovery: bool = True
    #: Maximum checkpoint replay rounds per PROPAGATE.
    max_replay_rounds: int = 2
    #: Evict semantic-network nodes off failed clusters onto survivors.
    remap_nodes: bool = True

    def __post_init__(self) -> None:
        for name in (
            "failed_cluster_fraction", "mu_loss_prob", "link_fail_prob",
            "transfer_corrupt_prob", "scp_timeout_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultConfigError(f"{name} must be in [0, 1]: {value}")
        if self.scp_timeout_penalty_us < 0:
            raise FaultConfigError(
                "scp_timeout_penalty_us must be >= 0: "
                f"{self.scp_timeout_penalty_us}"
            )
        if self.max_replay_rounds < 0:
            raise FaultConfigError(
                f"max_replay_rounds must be >= 0: {self.max_replay_rounds}"
            )
        if self.failed_clusters is not None and any(
            c < 0 for c in self.failed_clusters
        ):
            raise FaultConfigError(
                f"failed_clusters ids must be >= 0: {self.failed_clusters}"
            )

    @classmethod
    def disabled(cls) -> "FaultConfig":
        """A configuration that injects nothing at all."""
        return cls()

    @property
    def enabled(self) -> bool:
        """Whether any fault can actually occur under this config."""
        return bool(
            self.failed_clusters
            or self.failed_cluster_fraction > 0
            or self.mu_loss_prob > 0
            or self.link_fail_prob > 0
            or self.transfer_corrupt_prob > 0
            or self.scp_timeout_prob > 0
        )


def _stream(config: FaultConfig, name: str) -> random.Random:
    """A named, seed-derived RNG stream (independent per fault type)."""
    return random.Random(f"{config.seed}/{name}")


def failed_clusters_for(
    config: FaultConfig, num_clusters: int
) -> FrozenSet[int]:
    """The deterministic set of offline clusters for a machine size.

    Shared by the allocator-level remap (at machine construction) and
    the simulator (at run time) so both agree on which clusters are
    dead.  At least one cluster always survives.
    """
    if config.failed_clusters is not None:
        bad = {c for c in config.failed_clusters if 0 <= c < num_clusters}
    else:
        count = int(round(config.failed_cluster_fraction * num_clusters))
        if count <= 0:
            return frozenset()
        bad = set(
            _stream(config, "clusters").sample(range(num_clusters), count)
        )
    if len(bad) >= num_clusters:
        bad = set(sorted(bad)[: num_clusters - 1])
    return frozenset(bad)


@dataclass
class FaultStats:
    """Counters of injected faults and recovery work for run reports."""

    clusters_failed: int = 0
    mus_lost: int = 0
    links_failed: int = 0
    nodes_remapped: int = 0
    scp_timeouts: int = 0
    transfer_retries: int = 0
    transfer_failures: int = 0
    retry_time_us: float = 0.0
    messages_rerouted: int = 0
    messages_unreachable: int = 0
    replays: int = 0
    replayed_messages: int = 0
    messages_lost: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (JSON-friendly)."""
        return {
            "clusters_failed": self.clusters_failed,
            "mus_lost": self.mus_lost,
            "links_failed": self.links_failed,
            "nodes_remapped": self.nodes_remapped,
            "scp_timeouts": self.scp_timeouts,
            "transfer_retries": self.transfer_retries,
            "transfer_failures": self.transfer_failures,
            "retry_time_us": self.retry_time_us,
            "messages_rerouted": self.messages_rerouted,
            "messages_unreachable": self.messages_unreachable,
            "replays": self.replays,
            "replayed_messages": self.replayed_messages,
            "messages_lost": self.messages_lost,
        }

    def total_injected(self) -> int:
        """Aggregate count of fault events that actually occurred."""
        return (
            self.clusters_failed + self.mus_lost + self.links_failed
            + self.scp_timeouts + self.transfer_retries
        )

    def query_visible_failures(self) -> int:
        """Damage a *query* can observe in its answer.

        Retries, reroutes, and replays are recovered transparently —
        the result set is intact, only slower.  Lost or unreachable
        messages (and transfers that exhausted their retry budget) mean
        markers never arrived: the answer is silently incomplete.  The
        serving host's circuit breakers treat any nonzero value as a
        failed attempt on that replica.
        """
        return (
            self.messages_lost
            + self.messages_unreachable
            + self.transfer_failures
        )


class FaultInjector:
    """Realized fault pattern for one machine + runtime sampling.

    Construction fixes the *static* pattern (failed clusters, lost MUs,
    dead links) from the config seed; :meth:`transfer_corrupted` and
    :meth:`scp_timeout` sample the *transient* faults from independent
    streams.  Because the DES is deterministic, the sampling order —
    and therefore the full event trace — is bit-reproducible for a
    given seed.
    """

    def __init__(
        self,
        config: FaultConfig,
        num_clusters: int,
        mu_counts: Sequence[int],
        topology: Optional[HypercubeTopology] = None,
    ) -> None:
        if len(mu_counts) != num_clusters:
            raise FaultConfigError(
                "mu_counts must provide one entry per cluster"
            )
        self.cfg = config
        self.stats = FaultStats()
        self.failed_clusters: FrozenSet[int] = failed_clusters_for(
            config, num_clusters
        )
        self.stats.clusters_failed = len(self.failed_clusters)

        # MU server loss on surviving clusters (first MU spared).
        mu_rng = _stream(config, "mus")
        effective: List[int] = []
        for cid, count in enumerate(mu_counts):
            if cid in self.failed_clusters or config.mu_loss_prob <= 0:
                effective.append(count)
                continue
            lost = sum(
                1 for _ in range(count - 1)
                if mu_rng.random() < config.mu_loss_prob
            )
            self.stats.mus_lost += lost
            effective.append(count - lost)
        self.effective_mu_counts: Tuple[int, ...] = tuple(effective)
        #: Configured (pre-loss) MU counts, kept for observability.
        self.configured_mu_counts: Tuple[int, ...] = tuple(mu_counts)

        # ICN link failures over the topology's undirected adjacency.
        # A shared topology (one per machine) is reused for the
        # enumeration; ``neighbors`` is memoized and deterministic, so
        # the RNG draw order — and the realized pattern — is identical
        # to a freshly built topology.
        self.dead_links: FrozenSet[Tuple[int, int]] = frozenset()
        if config.link_fail_prob > 0:
            link_rng = _stream(config, "links")
            topo = (
                topology
                if topology is not None
                else HypercubeTopology(num_clusters)
            )
            dead: Set[Tuple[int, int]] = set()
            for a in range(num_clusters):
                for b in topo.neighbors(a):
                    if b <= a:
                        continue
                    if link_rng.random() < config.link_fail_prob:
                        dead.add(link_key(a, b))
            self.dead_links = frozenset(dead)
            self.stats.links_failed = len(self.dead_links)

        self._transfer_rng = _stream(config, "transfer")
        self._scp_rng = _stream(config, "scp")
        if topology is not None:
            # Defense in depth for shared route caches: a *different*
            # fault pattern than the last one routed through this
            # topology drops every memoized path.
            topology.note_fault_state(self.failed_clusters, self.dead_links)

    # -- observability ----------------------------------------------------
    def emit_injection_events(self, tracer, track: int, ts: float = 0.0) -> None:
        """Emit the realized *static* fault pattern as trace instants.

        One instant per offline cluster, per dead link, and (when any
        MU was lost) one summarizing instant per affected cluster —
        all at ``ts`` (machine construction time) on the given tracer
        track, so a Perfetto timeline shows what the run started out
        degraded with before any recovery event fires.
        """
        for cid in sorted(self.failed_clusters):
            tracer.instant(track, "cluster-offline", ts, cluster=cid)
        for a, b in sorted(self.dead_links):
            tracer.instant(track, "link-dead", ts, link=f"{a}-{b}")
        if self.stats.mus_lost:
            for cid, effective in enumerate(self.effective_mu_counts):
                lost = self.configured_mu_counts[cid] - effective
                if lost > 0 and cid not in self.failed_clusters:
                    tracer.instant(
                        track, "mus-lost", ts,
                        cluster=cid, lost=lost, surviving_mus=effective,
                    )

    # -- runtime sampling -------------------------------------------------
    def transfer_corrupted(self) -> bool:
        """Sample one memory-port transfer: corrupted in flight?"""
        if self.cfg.transfer_corrupt_prob <= 0:
            return False
        return self._transfer_rng.random() < self.cfg.transfer_corrupt_prob

    def scp_timeout(self) -> bool:
        """Sample one broadcast: transient SCP/bus timeout?"""
        if self.cfg.scp_timeout_prob <= 0:
            return False
        return self._scp_rng.random() < self.cfg.scp_timeout_prob
