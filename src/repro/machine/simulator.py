"""The SNAP-1 discrete-event simulator.

Ties every hardware model together and executes a SNAP program with
full timing:

1. the **controller** (PCP program flow + SCP operand instantiation)
   issues instructions over the global bus, stalling on marker
   dependencies with in-flight instructions (this is where
   β-parallelism materializes: independent PROPAGATEs overlap);
2. each cluster's **PU** decodes the broadcast instruction and
   decomposes it into marker-unit tasks;
3. **MUs** execute tasks — whole-table boolean/set/clear sweeps, seed
   scans, and per-node propagation expansions (α-parallelism);
4. the **CU** DMAs cross-cluster activation messages into the 4-ary
   hypercube, store-and-forwarding through intermediate CUs;
5. the **tiered synchronizer** detects propagation termination from
   per-level produced/consumed counts and charges the barrier cost;
6. the **performance collection network** records every monitoring
   event for the run report.

Semantics are delegated to :class:`repro.core.state.MachineState` —
the same primitives the functional engine uses — so the timed machine
is functionally identical to the golden model by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.activation import ActivationMessage
from ..core.state import Arrival, MachineState, PropagationContext, WorkReport
from ..isa.instructions import (
    Category,
    CollectColor,
    CollectMarker,
    CollectNode,
    CollectRelation,
    Create,
    Delete,
    Instruction,
    Propagate,
    SetColor,
)
from ..isa.program import SnapProgram
from ..obs.tracer import get_tracer
from .cluster import ClusterSim, build_clusters, pe_index_of_cluster, work_service_time
from .config import MachineConfig
from .des import Job, Simulator, Timeout
from .faults import FaultInjector
from .icn import HypercubeTopology
from .perfnet import EventCode, PerformanceCollector
from .report import InstructionTrace, MachineRunReport, OverheadBreakdown
from .sync import SyncStats, TieredSynchronizer, barrier_cost


@dataclass
class _InstrState:
    """Bookkeeping for one in-flight instruction."""

    index: int
    instr: Instruction
    issue_time: float
    clusters_remaining: int = 0
    scan_done: bool = False
    pending: int = 0
    ctx: Optional[PropagationContext] = None
    collected: List[Any] = field(default_factory=list)
    work_ops: int = 0
    messages: int = 0
    completed: bool = False
    #: Activation messages lost to faults, awaiting checkpoint replay.
    lost: List[Any] = field(default_factory=list)
    replay_rounds: int = 0
    #: Tracing bookkeeping (populated only when a tracer is active).
    lane: int = -1
    span: Any = None
    phase: Any = None


class SnapSimulation:
    """One timed execution of a SNAP program."""

    def __init__(
        self,
        state: MachineState,
        config: MachineConfig,
        topology: Optional[HypercubeTopology] = None,
        tracer=None,
        metrics=None,
        trace_offset_us: float = 0.0,
        trace_name: str = "machine",
    ) -> None:
        if state.num_clusters != config.num_clusters:
            raise ValueError(
                "machine state and configuration disagree on cluster count"
            )
        self.state = state
        self.cfg = config
        self.timing = config.timing
        self.sim = Simulator()
        # A topology may be shared across runs (SnapMachine passes one
        # per machine) so its route caches survive between programs;
        # routing is stateless, so sharing cannot change any path.
        if topology is not None and topology.num_clusters != config.num_clusters:
            raise ValueError("shared topology disagrees on cluster count")
        self.topology = (
            topology
            if topology is not None
            else HypercubeTopology(config.num_clusters)
        )
        # Fault layer: constructed only for an *enabled* config, so the
        # fault-free path never draws an RNG stream or takes a branch
        # that could perturb the event trace.
        fault_cfg = config.faults
        self.faults: Optional[FaultInjector] = None
        if fault_cfg is not None and fault_cfg.enabled:
            self.faults = FaultInjector(
                fault_cfg,
                config.num_clusters,
                config.mu_counts(),
                topology=self.topology,
            )
        self.clusters: List[ClusterSim] = build_clusters(
            self.sim, config, self.faults
        )
        #: Clusters whose PU/CU still respond (all of them, fault-free).
        self.alive_clusters: List[ClusterSim] = [
            c for c in self.clusters if not c.failed
        ]
        self.syncer = TieredSynchronizer(config.total_pes)
        self.perf = PerformanceCollector()
        self.report = MachineRunReport(
            num_clusters=config.num_clusters,
            total_pes=config.total_pes,
        )
        # Controller: PCP + SCP + global bus, serialized.
        from .des import Server

        self.controller = Server(self.sim, name="controller")
        if self.faults is not None and self.faults.cfg.scp_timeout_prob > 0:
            self.controller.penalty_hook = self._scp_penalty
        # Fault timeline: events are chain-scheduled one at a time (the
        # heap holds at most one pending fault event), and gray hooks
        # are installed only when the config can ever exercise them —
        # schedule-free faulty runs take none of these branches.
        self._fault_cursor = 0
        self._fault_event_handle = None
        self._drops_possible = False
        if self.faults is not None:
            self._drops_possible = self.faults.drops_possible
            if self.faults.slowdown_possible:
                for cluster in self.clusters:
                    cluster.mus.penalty_hook = self._make_mu_slowdown(
                        cluster.cluster_id
                    )
            if self.faults.schedule.events:
                self._schedule_next_fault_event()
        self._program: Optional[SnapProgram] = None
        self._pc = 0
        self._in_flight: Dict[int, _InstrState] = {}
        self._traces: Dict[int, InstructionTrace] = {}
        self._pe_of_cluster = [
            pe_index_of_cluster(config, cid)
            for cid in range(config.num_clusters)
        ]
        # Observability.  `self._tr is None` is the only check hot
        # paths pay when tracing is off (NULL_TRACER default); all
        # track allocation happens here, up front.  `trace_offset_us`
        # shifts every emitted timestamp so nested runs (a replica
        # executing one query under the serving host) land at the host
        # time they actually ran.
        obs_tracer = tracer if tracer is not None else get_tracer()
        self._tr = obs_tracer if obs_tracer.enabled else None
        self._metrics = metrics
        self._off = trace_offset_us
        self._trace_name = trace_name
        if self._tr is not None:
            tr = self._tr
            self._tk_ctrl = tr.track(trace_name, "controller")
            self._tk_kernel = tr.track(trace_name, "des-kernel")
            self._tk_icn = tr.track(trace_name, "icn")
            self._tk_faults = tr.track(trace_name, "faults")
            self._tk_cluster = [
                tr.track(trace_name, f"cluster {cid:02d}")
                for cid in range(config.num_clusters)
            ]
            self._tk_cu = [
                tr.track(trace_name, f"cluster {cid:02d} cu")
                for cid in range(config.num_clusters)
            ]
            self._lane_tracks: List[int] = []
            self._free_lanes: List[int] = []
            if self.faults is not None:
                self.faults.emit_injection_events(
                    tr, self._tk_faults, ts=self._off
                )

    # ------------------------------------------------------------------
    # Public entry
    # ------------------------------------------------------------------
    def run(
        self, program: SnapProgram, budget_us: Optional[float] = None
    ) -> MachineRunReport:
        """Execute the program to completion; return the run report.

        With a ``budget_us``, execution stops once the simulated clock
        reaches the budget: the report is marked ``aborted``, partial
        traces are kept, and no deadlock check is made (in-flight work
        was cancelled by the watchdog, not stuck).  The serving host
        uses this to cut off queries that overrun their deadline
        without simulating the remainder of the run.
        """
        self._program = program
        self._pc = 0
        self._try_issue()
        if self._tr is not None:
            self.sim.run_traced(
                self._tr, self._tk_kernel,
                until=budget_us, ts_offset=self._off,
            )
        else:
            self.sim.run(until=budget_us)
        incomplete = self._in_flight or self._pc < len(program)
        if incomplete and budget_us is not None:
            self.report.aborted = True
        elif incomplete:
            raise RuntimeError(
                f"simulation deadlock: pc={self._pc}, "
                f"in flight={sorted(self._in_flight)}"
            )
        if budget_us is not None and not incomplete:
            # The run finished inside its budget: report the true end
            # time, not the budget the clock was clamped to.
            self.report.total_time_us = self.sim.last_event_us
        else:
            self.report.total_time_us = self.sim.now
        self.report.traces = [
            self._traces[i] for i in sorted(self._traces)
        ]
        self.report.events_processed = self.sim.events_processed
        self.report.perf_records = list(self.perf.records)
        for cluster in self.clusters:
            summary = cluster.busy_summary()
            summary["mu_servers"] = cluster.num_mus
            self.report.cluster_busy.append(summary)
        utilization = self.report.mu_utilization()
        assert utilization <= 1.0 + 1e-9, (
            f"MU utilization {utilization} exceeds capacity: "
            "busy-time accounting is broken"
        )
        if self.faults is not None:
            self.faults.stats.nodes_remapped = getattr(
                self.state, "nodes_remapped", 0
            )
            self.report.faults_enabled = True
            self.report.fault_stats = self.faults.stats
        if self._metrics is not None:
            self._feed_metrics()
        return self.report

    def _feed_metrics(self) -> None:
        """Fold the finished run's report into the metrics registry.

        Runs once per program, after the event loop — the machine
        layer's aggregate counters cost nothing on the hot path.
        """
        registry = self._metrics
        traces = self.report.traces
        registry.counter("machine.instructions").inc(len(traces))
        latency = registry.histogram("machine.instruction_latency_us")
        for trace in traces:
            latency.observe(trace.latency)
        icn = self.report.icn_stats
        registry.counter("machine.icn.messages").inc(icn.messages)
        registry.counter("machine.icn.hops").inc(icn.total_hops)
        for dim in sorted(icn.dimension_counts):
            registry.counter(f"machine.icn.dim.{dim}").inc(
                icn.dimension_counts[dim]
            )
        if self.faults is not None:
            for key, value in self.faults.stats.as_dict().items():
                if value:
                    registry.counter(f"machine.faults.{key}").inc(value)

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def _scp_penalty(self, job: Job) -> float:
        """Transient SCP/bus timeout: stretch this broadcast's service."""
        assert self.faults is not None
        if self.faults.scp_timeout():
            self.faults.stats.scp_timeouts += 1
            if self._tr is not None:
                self._tr.instant(
                    self._tk_faults, "scp-timeout", self._off + self.sim.now,
                    penalty_us=self.faults.cfg.scp_timeout_penalty_us,
                )
            return self.faults.cfg.scp_timeout_penalty_us
        return 0.0

    def _make_mu_slowdown(self, cid: int):
        """Gray slow-MU penalty hook for one cluster's pool.

        Stretches each task's service by the cluster's *current*
        slowdown factor, so a ``mu-slowdown`` event takes effect on
        the next task to enter service and a factor of 1.0 restores
        full speed.
        """
        faults = self.faults

        def penalty(job: Job) -> float:
            extra = (faults.slowdown_for(cid) - 1.0) * job.service_time
            if extra > 0.0:
                faults.stats.slowdown_us += extra
            return extra

        return penalty

    # ------------------------------------------------------------------
    # Fault timeline delivery
    # ------------------------------------------------------------------
    def _schedule_next_fault_event(self) -> None:
        """Put the next schedule entry on the event heap (chained)."""
        events = self.faults.schedule.events
        cursor = self._fault_cursor
        if cursor >= len(events):
            self._fault_event_handle = None
            return
        delay = events[cursor].time_us - self.sim.now
        self._fault_event_handle = self.sim.schedule(
            delay if delay > 0.0 else 0.0, self._apply_fault_event
        )

    def _apply_fault_event(self) -> None:
        """Deliver one timeline event to the live world.

        Routing, dispatch (``alive_clusters``), MU-pool capacity, and
        the gray sampling rates all observe the change from this
        instant on; work already in service on an affected component
        runs to completion (committed service cannot be retracted).
        """
        faults = self.faults
        event = faults.schedule.events[self._fault_cursor]
        self._fault_cursor += 1
        routing_changed = faults.apply_event(event)
        if routing_changed:
            blocked = faults.blocked_clusters
            for cluster in self.clusters:
                cluster.failed = cluster.cluster_id in blocked
            self.alive_clusters = [
                c for c in self.clusters if not c.failed
            ]
            self.topology.note_fault_state(blocked, faults.blocked_links)
        if event.kind in ("mu-fail", "mu-repair"):
            cid = event.cluster
            count = faults.current_mu_counts[cid]
            pool = self.clusters[cid].mus
            if count != pool.num_servers:
                pool.resize(count)
                # Report capacity = the largest pool this cluster ever
                # had, so utilization stays bounded by real capacity.
                self.clusters[cid].num_mus = pool.peak_servers
        if self._tr is not None:
            detail = {}
            if event.cluster is not None:
                detail["cluster"] = event.cluster
            if event.link is not None:
                detail["link"] = f"{event.link[0]}-{event.link[1]}"
            if event.value is not None:
                detail["value"] = event.value
            self._tr.instant(
                self._tk_faults, f"fault-{event.kind}",
                self._off + self.sim.now, **detail,
            )
        self._schedule_next_fault_event()

    # ------------------------------------------------------------------
    # Tracing helpers (called only behind `self._tr is not None`)
    # ------------------------------------------------------------------
    def _trace_issue(self, st: _InstrState) -> None:
        """Open an instruction span on the lowest free pipeline lane.

        One lane per concurrently in-flight instruction: spans on a
        lane are strictly sequential, so Perfetto renders the
        controller pipeline as parallel rows with clean nesting —
        phase spans (`broadcast` / `wave` / `barrier` / …) are
        children of the instruction span on the same lane.
        """
        tr = self._tr
        if self._free_lanes:
            self._free_lanes.sort()
            lane = self._free_lanes.pop(0)
        else:
            lane = len(self._lane_tracks)
            self._lane_tracks.append(
                tr.track(self._trace_name, f"pipe {lane}")
            )
        st.lane = lane
        ts = self._off + self.sim.now
        st.span = tr.begin(
            self._lane_tracks[lane], f"{st.instr.opcode} #{st.index}", ts
        )
        st.phase = tr.begin(self._lane_tracks[lane], "broadcast", ts)

    def _trace_phase(self, st: _InstrState, name: Optional[str]) -> None:
        """Close the current phase span and open the next one."""
        tr = self._tr
        ts = self._off + self.sim.now
        tr.end(st.phase, ts)
        st.phase = (
            tr.begin(self._lane_tracks[st.lane], name, ts)
            if name is not None else None
        )

    def _trace_complete(self, st: _InstrState) -> None:
        """Close the instruction span and release its lane."""
        if st.span is None:
            return
        tr = self._tr
        ts = self._off + self.sim.now
        tr.end(st.phase, ts)
        tr.end(
            st.span, ts,
            work_ops=st.work_ops, messages=st.messages,
            opcode=st.instr.opcode,
            alpha=st.ctx.alpha if st.ctx is not None else 0,
        )
        self._free_lanes.append(st.lane)

    def _traced_span_job(self, track: int, name: str, job: Job) -> Job:
        """Wrap a single-server job so its occupancy becomes a span.

        The span runs from actual service start to actual completion
        (``now - start``), so penalty hooks (SCP timeouts stretching a
        broadcast) are visible in the trace.  Only valid for serialized
        servers (controller, PU, CU) — pool jobs would overlap on one
        track and render as broken nesting.
        """
        tr = self._tr
        off = self._off
        sim = self.sim
        start_holder: List[float] = []
        orig_start = job.on_start
        orig_done = job.on_done

        def _on_start() -> None:
            start_holder.append(sim.now)
            if orig_start is not None:
                orig_start()

        def _on_done(*args: Any) -> None:
            start = start_holder[0]
            tr.span(track, name, off + start, sim.now - start)
            if orig_done is not None:
                orig_done(*args)

        job.on_start = _on_start
        job.on_done = _on_done
        return job

    def _traced_mu_job(self, cid: int, job: Job) -> Job:
        """Wrap an MU-pool job to sample the cluster's busy-MU count.

        Pool jobs overlap, so MU activity is a counter track
        (``mu_busy``), not spans: one sample as each task starts and
        one as it finishes.
        """
        tr = self._tr
        off = self._off
        sim = self.sim
        track = self._tk_cluster[cid]
        pool = self.clusters[cid].mus
        orig_start = job.on_start
        orig_done = job.on_done

        def _on_start() -> None:
            tr.counter(track, "mu_busy", off + sim.now, pool.busy_servers)
            if orig_start is not None:
                orig_start()

        def _on_done(*args: Any) -> None:
            tr.counter(track, "mu_busy", off + sim.now, pool.busy_servers)
            if orig_done is not None:
                orig_done(*args)

        job.on_start = _on_start
        job.on_done = _on_done
        return job

    # ------------------------------------------------------------------
    # Controller
    # ------------------------------------------------------------------
    def _depends_on_inflight(self, instr: Instruction) -> bool:
        if instr.category == Category.COLLECT and self._in_flight:
            # COLLECT-NODE forces PU serialization: full barrier.
            return True
        if isinstance(instr, (Create, Delete, SetColor)) and self._in_flight:
            # Node management alters the knowledge base; the controller
            # performs it only when the pipeline is empty (§III-C
            # "housekeeping is performed when the pipeline is empty").
            return True
        reads, writes = set(instr.reads()), set(instr.writes())
        for st in self._in_flight.values():
            sw = set(st.instr.writes())
            sr = set(st.instr.reads())
            if sw & (reads | writes) or sr & writes:
                return True
        return False

    def _try_issue(self) -> None:
        program = self._program
        if program is None or self._pc >= len(program):
            return
        if len(self._in_flight) >= self.cfg.instruction_queue_depth:
            return
        if any(c.queue_full for c in self.clusters):
            return
        instr = program[self._pc]
        if self._depends_on_inflight(instr):
            return  # re-tried on every instruction completion
        index = self._pc
        self._pc += 1
        st = _InstrState(index=index, instr=instr, issue_time=self.sim.now)
        self._in_flight[index] = st
        service = self.timing.t_pcp + self.timing.t_broadcast
        self.report.overheads.broadcast += self.timing.t_broadcast
        self._attribute(instr.category, self.timing.t_broadcast)
        self.perf.record(self.sim.now, -1, EventCode.INSTR_ISSUE, index)
        job = Job(service, on_done=self._broadcast_done, args=(st,))
        if self._tr is not None:
            self._trace_issue(st)
            job = self._traced_span_job(
                self._tk_ctrl, f"broadcast #{index}", job
            )
        self.controller.submit(job)
        # The controller pipeline may issue further independent
        # instructions while this one is broadcast.
        self.sim.schedule(0.0, self._try_issue)

    def _broadcast_done(self, st: _InstrState) -> None:
        instr = st.instr
        if self._tr is not None:
            self._trace_phase(
                st, "wave" if isinstance(instr, Propagate) else "execute"
            )
        if isinstance(instr, (Create, Delete, SetColor)):
            self._dispatch_maintenance(st)
            return
        if isinstance(instr, Propagate):
            st.ctx = self.state.make_context(instr, level=st.index)
        # Failed clusters never decode: their PU is stuck.  Any node
        # remapping happened at machine construction, so surviving
        # clusters hold the evicted table regions.
        st.clusters_remaining = len(self.alive_clusters)
        for cluster in self.alive_clusters:
            cluster.instructions_queued += 1
            job = Job(
                self.timing.t_decode,
                on_done=self._decode_done,
                args=(st, cluster),
            )
            if self._tr is not None:
                job = self._traced_span_job(
                    self._tk_cluster[cluster.cluster_id],
                    f"decode #{st.index}", job,
                )
            cluster.pu.submit(job)
        self._try_issue()

    # ------------------------------------------------------------------
    # Node maintenance (controller-side housekeeping)
    # ------------------------------------------------------------------
    def _dispatch_maintenance(self, st: _InstrState) -> None:
        instr = st.instr
        if isinstance(instr, Create):
            work = self.state.create(instr)
        elif isinstance(instr, Delete):
            work = self.state.delete(instr)
        else:
            assert isinstance(instr, SetColor)
            work = self.state.set_color(instr)
        st.work_ops += work.total()
        # The affected node's home cluster performs the table update.
        try:
            home, _ = self.state.address(
                instr.node if isinstance(instr, SetColor) else instr.source
            )
        except Exception:
            home = 0
        if self.faults is not None and home in self.faults.blocked_clusters:
            # Without node remap a table update may target an offline
            # cluster; the controller falls back to a survivor.
            home = self.alive_clusters[0].cluster_id
        st.clusters_remaining = 1
        service = work_service_time(work, self.timing)
        self._attribute(instr.category, service)
        job = Job(service, on_done=self._cluster_task_done, args=(st,))
        if self._tr is not None:
            job = self._traced_mu_job(home, job)
        self.clusters[home].mus.submit(job)
        self._try_issue()

    # ------------------------------------------------------------------
    # PU decode and task dispatch
    # ------------------------------------------------------------------
    def _decode_done(self, st: _InstrState, cluster: ClusterSim) -> None:
        cluster.instructions_queued -= 1
        instr = st.instr
        cid = cluster.cluster_id
        if isinstance(instr, Propagate):
            self._dispatch_seed_scan(st, cluster)
            return
        if instr.category == Category.COLLECT:
            items, work = self._run_collector(cid, instr)
            st.work_ops += work.total()
            service = work_service_time(work, self.timing)
            self._attribute(instr.category, service)
            job = Job(
                service,
                on_done=self._cluster_task_done,
                args=(st, items),
            )
            if self._tr is not None:
                job = self._traced_mu_job(cid, job)
            cluster.mus.submit(job)
            return
        work = self._run_cluster_primitive(cid, instr)
        st.work_ops += work.total()
        service = work_service_time(work, self.timing)
        self._attribute(instr.category, service)
        job = Job(service, on_done=self._cluster_task_done, args=(st,))
        if self._tr is not None:
            job = self._traced_mu_job(cid, job)
        cluster.mus.submit(job)

    def _run_collector(self, cid: int, instr: Instruction):
        state = self.state
        if isinstance(instr, CollectNode):
            return state.collect_node(cid, instr)
        if isinstance(instr, CollectMarker):
            return state.collect_marker(cid, instr)
        if isinstance(instr, CollectRelation):
            return state.collect_relation(cid, instr)
        assert isinstance(instr, CollectColor)
        return state.collect_color(cid, instr)

    def _run_cluster_primitive(self, cid: int, instr: Instruction) -> WorkReport:
        from ..isa.instructions import (
            AndMarker, ClearMarker, FuncMarker, MarkerCreate, MarkerDelete,
            MarkerSetColor, NotMarker, OrMarker, SearchColor, SearchNode,
            SearchRelation, SetMarker,
        )

        state = self.state
        dispatch = [
            (SearchNode, state.search_node),
            (SearchRelation, state.search_relation),
            (SearchColor, state.search_color),
            (AndMarker, state.and_marker),
            (OrMarker, state.or_marker),
            (NotMarker, state.not_marker),
            (SetMarker, state.set_marker),
            (ClearMarker, state.clear_marker),
            (FuncMarker, state.func_marker),
            (MarkerCreate, state.marker_create),
            (MarkerDelete, state.marker_delete),
            (MarkerSetColor, state.marker_set_color),
        ]
        for cls, primitive in dispatch:
            if isinstance(instr, cls):
                return primitive(cid, instr)
        raise RuntimeError(f"no cluster primitive for {instr.opcode}")

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _dispatch_seed_scan(self, st: _InstrState, cluster: ClusterSim) -> None:
        """MU scans the status table and expands every seed node."""
        ctx = st.ctx
        assert ctx is not None
        cid = cluster.cluster_id
        seeds, work = self.state.seeds(ctx, cid)
        local_out: List[Arrival] = []
        remote_out: List[ActivationMessage] = []
        for seed in seeds:
            seed_local, seed_remote, seed_work = self.state.expand(ctx, seed)
            work.merge(seed_work)
            local_out.extend(seed_local)
            remote_out.extend(seed_remote)
        st.work_ops += work.total()
        service = work_service_time(work, self.timing)
        self._attribute(Category.PROPAGATE, service)
        self.perf.record(self.sim.now, cid, EventCode.TASK_START, st.index)
        job = Job(
            service,
            on_done=self._seed_scan_done,
            args=(st, cid, local_out, remote_out),
        )
        if self._tr is not None:
            self._tr.instant(
                self._tk_cluster[cid], "seed-scan",
                self._off + self.sim.now,
                instr=st.index, seeds=len(seeds),
            )
            job = self._traced_mu_job(cid, job)
        cluster.mus.submit(job)

    def _seed_scan_done(
        self,
        st: _InstrState,
        cid: int,
        local_out: List[Arrival],
        remote_out: List[ActivationMessage],
    ) -> None:
        self._release_outputs(st, cid, local_out, remote_out)
        self._cluster_task_done(st)

    def _release_outputs(
        self,
        st: _InstrState,
        cid: int,
        local_out: List[Arrival],
        remote_out: List[ActivationMessage],
    ) -> None:
        if local_out:
            self._spawn_arrival_batch(st, local_out)
        for msg in remote_out:
            self._send_message(st, cid, msg)

    def _prepare_arrival(self, st: _InstrState, arrival: Arrival) -> Job:
        """Deliver a marker at its destination node (one MU task)."""
        ctx = st.ctx
        assert ctx is not None
        should_expand, work = self.state.deliver(ctx, arrival)
        local_out: List[Arrival] = []
        remote_out: List[ActivationMessage] = []
        if should_expand:
            local_out, remote_out, expand_work = self.state.expand(ctx, arrival)
            work.merge(expand_work)
        st.work_ops += work.total()
        st.pending += 1
        pe = self._pe_of_cluster[arrival.cluster]
        self.syncer.produce(pe, st.index)
        service = work_service_time(work, self.timing)
        self._attribute(Category.PROPAGATE, service)
        job = Job(
            service,
            on_done=self._arrival_done,
            args=(st, arrival.cluster, pe, local_out, remote_out),
        )
        if self._tr is not None:
            job = self._traced_mu_job(arrival.cluster, job)
        return job

    def _spawn_arrival_job(self, st: _InstrState, arrival: Arrival) -> None:
        job = self._prepare_arrival(st, arrival)
        self.clusters[arrival.cluster].mus.submit(job)

    def _spawn_arrival_batch(
        self, st: _InstrState, arrivals: List[Arrival]
    ) -> None:
        """Deliver a fan-out of markers, batched per destination cluster.

        Consecutive arrivals bound for the same cluster become one
        aggregated MU-pool submission.  Delivery/expansion side effects
        run in arrival order and ``submit_batch`` preserves per-job
        enqueue order, so the event trace is identical to N sequential
        submissions — only the per-call overhead is amortized.
        """
        batch: List[Job] = []
        batch_cid = -1
        for arrival in arrivals:
            cid = arrival.cluster
            if cid != batch_cid and batch:
                self.clusters[batch_cid].mus.submit_batch(batch)
                batch = []
            batch_cid = cid
            batch.append(self._prepare_arrival(st, arrival))
        if batch:
            self.clusters[batch_cid].mus.submit_batch(batch)

    def _arrival_done(
        self,
        st: _InstrState,
        cid: int,
        pe: int,
        local_out: List[Arrival],
        remote_out: List[ActivationMessage],
    ) -> None:
        self._release_outputs(st, cid, local_out, remote_out)
        self.syncer.consume(pe, st.index)
        st.pending -= 1
        self._check_propagate_done(st)

    def _send_message(
        self, st: _InstrState, src: int, msg: ActivationMessage
    ) -> None:
        """Transport an activation message across the hypercube."""
        if self.cfg.pack_messages:
            # Round-trip through the 64-bit wire format: values are
            # bfloat16-truncated exactly as on the hardware.
            from ..core.activation import unpack

            raw = msg.pack([msg.rule])
            msg = unpack(raw, [msg.rule], level=msg.level, hops=msg.hops)
        if self.faults is None:
            path = self.topology.route(src, msg.dest_cluster)
        else:
            path = self.topology.route_avoiding(
                src,
                msg.dest_cluster,
                blocked_clusters=self.faults.blocked_clusters,
                blocked_links=self.faults.blocked_links,
            )
            if path is None:
                # No surviving route: the marker simply never arrives
                # (graceful degradation — accuracy, not correctness).
                self.faults.stats.messages_unreachable += 1
                if self._tr is not None:
                    self._tr.instant(
                        self._tk_faults, "msg-unreachable",
                        self._off + self.sim.now,
                        src=src, dest=msg.dest_cluster,
                    )
                return
            if path != self.topology.route(src, msg.dest_cluster):
                self.faults.stats.messages_rerouted += 1
                if self._tr is not None:
                    self._tr.instant(
                        self._tk_faults, "msg-rerouted",
                        self._off + self.sim.now,
                        src=src, dest=msg.dest_cluster, hops=len(path),
                    )
        st.pending += 1
        st.messages += 1
        pe = self._pe_of_cluster[src]
        self.syncer.produce(pe, st.index)
        self.report.sync_stats.count_message()
        hops = len(path)
        latency = (
            self.timing.t_cu_dma
            + hops * self.timing.t_hop
            + max(0, hops - 1) * self.timing.t_forward
        )
        # One atomic stats update per message: the hop count and the
        # per-dimension counts come from the same (cached) path, so
        # they can never disagree.
        self.report.icn_stats.record_message(
            self.topology.path_dimensions(src, path), latency
        )
        self.report.overheads.communication += latency
        self._attribute(Category.PROPAGATE, latency)
        self.perf.record(self.sim.now, src, EventCode.MSG_SEND, st.index)
        if self._tr is not None:
            ts = self._off + self.sim.now
            self._tr.instant(
                self._tk_cluster[src], "msg-send", ts,
                dest=msg.dest_cluster, hops=hops, instr=st.index,
                latency_us=latency,
            )
            self._tr.counter(
                self._tk_icn, "messages", ts,
                self.report.icn_stats.messages,
            )

        source_cluster = self.clusters[src]
        source_cluster.activation_queue.push(msg)
        # Per-transfer recovery record, carried hop to hop.  Created
        # only when corruption is possible, so the fault-free (and the
        # corruption-free faulty) transport path is untouched.
        rec: Optional[Dict[str, Any]] = None
        if self.faults is not None and self.faults.corruption_possible:
            rec = {"attempts": 0, "alive": True, "watchdog": None, "src": src}

        job = Job(
            self.timing.t_cu_dma,
            on_done=self._launch_message,
            args=(st, pe, msg, path, rec, source_cluster),
        )
        if self._tr is not None:
            job = self._traced_span_job(
                self._tk_cu[src], f"dma #{st.index}", job
            )
        source_cluster.cu.submit(job)

    def _launch_message(
        self,
        st: _InstrState,
        producer_pe: int,
        msg: ActivationMessage,
        path: List[int],
        rec: Optional[Dict[str, Any]],
        source_cluster: ClusterSim,
    ) -> None:
        """Source CU DMA done: the message leaves the activation memory."""
        source_cluster.activation_queue.pop()
        self._advance_message(st, producer_pe, msg, path, 0, rec)

    def _advance_message(
        self,
        st: _InstrState,
        producer_pe: int,
        msg: ActivationMessage,
        path: List[int],
        hop_index: int,
        rec: Optional[Dict[str, Any]] = None,
    ) -> None:
        """One wire hop; store-and-forward at intermediate CUs."""
        if not path:
            # Destination is the source cluster (can happen only when a
            # packed message round-trips); deliver directly.
            self._deliver_message(st, producer_pe, msg)
            return
        self.sim.schedule(
            self.timing.t_hop,
            self._after_wire, st, producer_pe, msg, path, hop_index, rec,
        )

    def _after_wire(
        self,
        st: _InstrState,
        producer_pe: int,
        msg: ActivationMessage,
        path: List[int],
        hop_index: int,
        rec: Optional[Dict[str, Any]],
    ) -> None:
        """The wire transfer of one hop finished."""
        if rec is not None:
            if not rec["alive"]:
                # The recovery watchdog already declared this
                # transfer lost; drop the stale wire event.
                return
            if self.faults is not None and self.faults.transfer_corrupted():
                # Parity caught a corrupted transfer on this hop:
                # retry the hop after a backoff instead of
                # delivering poisoned data.
                self._retry_hop(st, producer_pe, msg, path, hop_index, rec)
                return
        if hop_index == len(path) - 1:
            if rec is not None and rec["watchdog"] is not None:
                watchdog = rec["watchdog"]
                if watchdog.armed:
                    watchdog.cancel()
            self._deliver_message(st, producer_pe, msg)
        else:
            target = path[hop_index]
            forwarder = self.clusters[target]
            self.perf.record(
                self.sim.now, target, EventCode.MSG_FORWARD, st.index
            )
            job = Job(
                self.timing.t_forward,
                on_done=self._advance_message,
                args=(st, producer_pe, msg, path, hop_index + 1, rec),
            )
            if self._tr is not None:
                job = self._traced_span_job(
                    self._tk_cu[target], f"fwd #{st.index}", job
                )
            forwarder.cu.submit(job)

    def _retry_hop(
        self,
        st: _InstrState,
        producer_pe: int,
        msg: ActivationMessage,
        path: List[int],
        hop_index: int,
        rec: Dict[str, Any],
    ) -> None:
        """Detected corruption: capped-backoff retry under a watchdog."""
        assert self.faults is not None
        policy = self.faults.cfg.retry
        rec["attempts"] += 1
        if rec["attempts"] > policy.max_retries:
            watchdog = rec["watchdog"]
            if watchdog is not None and watchdog.armed:
                watchdog.cancel()
            rec["alive"] = False
            self.faults.stats.transfer_failures += 1
            self._message_lost(st, producer_pe, msg, rec["src"])
            return
        self.faults.stats.transfer_retries += 1
        if self._tr is not None:
            self._tr.instant(
                self._tk_faults, "transfer-retry",
                self._off + self.sim.now,
                attempt=rec["attempts"], src=rec["src"],
                dest=msg.dest_cluster,
            )
        if rec["watchdog"] is None:
            # First corruption of this transfer arms the timeout
            # budget: total recovery (simulated µs) is bounded even if
            # every retry keeps getting corrupted.
            rec["watchdog"] = Timeout(
                self.sim, policy.timeout_budget_us,
                self._transfer_timed_out, st, producer_pe, msg, rec,
            )
        backoff = policy.backoff(rec["attempts"] - 1)
        self.faults.stats.retry_time_us += backoff
        # The retry costs the backoff wait plus the re-sent wire hop
        # (the wait is scheduled here; _advance_message re-schedules
        # the hop itself).
        self.report.overheads.communication += backoff + self.timing.t_hop
        self._attribute(Category.PROPAGATE, backoff + self.timing.t_hop)
        self.sim.schedule(
            backoff,
            self._advance_message, st, producer_pe, msg, path, hop_index, rec,
        )

    def _transfer_timed_out(
        self,
        st: _InstrState,
        producer_pe: int,
        msg: ActivationMessage,
        rec: Dict[str, Any],
    ) -> None:
        """Recovery budget exhausted: declare the transfer failed."""
        assert self.faults is not None
        rec["alive"] = False
        self.faults.stats.transfer_failures += 1
        if self._tr is not None:
            self._tr.instant(
                self._tk_faults, "transfer-timeout",
                self._off + self.sim.now,
                src=rec["src"], dest=msg.dest_cluster,
            )
        self._message_lost(st, producer_pe, msg, rec["src"])

    def _message_lost(
        self,
        st: _InstrState,
        producer_pe: int,
        msg: ActivationMessage,
        src: int,
    ) -> None:
        """Give up on a transfer; queue it for checkpoint replay.

        The synchronizer still sees a consume — the transfer is
        *accounted for*, just unsuccessful — so the propagation barrier
        can fire and decide whether to replay from the checkpoint.
        """
        if self._tr is not None:
            self._tr.instant(
                self._tk_faults, "msg-lost", self._off + self.sim.now,
                src=src, dest=msg.dest_cluster, instr=st.index,
            )
        st.lost.append((src, msg))
        self.syncer.consume(producer_pe, st.index)
        st.pending -= 1
        self._check_propagate_done(st)

    def _deliver_message(
        self, st: _InstrState, producer_pe: int, msg: ActivationMessage
    ) -> None:
        if self._drops_possible and self.faults.marker_dropped():
            # Gray failure: the marker vanishes at the destination NIC
            # without any CRC trip or timeout.  Sync counters still
            # balance (the barrier sees a consume), so the propagation
            # "completes" with silently missing activation — invisible
            # to query_visible_failures, caught only by the host's
            # answer-integrity audit.
            self.faults.stats.markers_dropped += 1
            if self._tr is not None:
                self._tr.instant(
                    self._tk_faults, "marker-dropped",
                    self._off + self.sim.now,
                    instr=st.index, dest=msg.dest_cluster,
                )
            self.syncer.consume(producer_pe, st.index)
            st.pending -= 1
            self._check_propagate_done(st)
            return
        self.perf.record(
            self.sim.now, msg.dest_cluster, EventCode.MSG_RECV, st.index
        )
        if self._tr is not None:
            self._tr.instant(
                self._tk_cluster[msg.dest_cluster], "msg-recv",
                self._off + self.sim.now, instr=st.index, hops=msg.hops,
            )
        arrival = self.state.message_to_arrival(msg)
        self._spawn_arrival_job(st, arrival)
        self.syncer.consume(producer_pe, st.index)
        st.pending -= 1
        self._check_propagate_done(st)

    def _check_propagate_done(self, st: _InstrState) -> None:
        if st.completed or not st.scan_done or st.pending > 0:
            return
        if st.lost:
            # Checkpoint recovery: the marker state up to this barrier
            # *is* the checkpoint (delivered markers are already
            # folded in), so only the lost activation messages need
            # re-issuing — not the whole propagation.
            assert self.faults is not None
            fc = self.faults.cfg
            if fc.checkpoint_recovery and st.replay_rounds < fc.max_replay_rounds:
                st.replay_rounds += 1
                lost, st.lost = st.lost, []
                self.faults.stats.replays += 1
                self.faults.stats.replayed_messages += len(lost)
                if self._tr is not None:
                    self._tr.instant(
                        self._tk_faults, "checkpoint-replay",
                        self._off + self.sim.now,
                        instr=st.index, round=st.replay_rounds,
                        messages=len(lost),
                    )
                for src, msg in lost:
                    self._send_message(st, src, msg)
                if st.pending > 0:
                    return
                # Every replayed message was unreachable; fall through.
            if st.lost:
                self.faults.stats.messages_lost += len(st.lost)
                st.lost.clear()
        st.completed = True
        # Tiered protocol check: this level's counters must balance.
        if self.syncer.level_balance(st.index) != 0:
            raise RuntimeError(
                f"tiered sync counters unbalanced for instruction {st.index}"
            )
        cost = barrier_cost(
            self.cfg.total_pes,
            self.timing.t_sync_base,
            self.timing.t_sync_per_pe,
        )
        self.report.overheads.synchronization += cost
        self._attribute(Category.PROPAGATE, cost)
        self.syncer.reset_level(st.index)
        if self._tr is not None and st.span is not None:
            self._trace_phase(st, "barrier")
        self.sim.schedule(cost, self._barrier_done, st)

    def _barrier_done(self, st: _InstrState) -> None:
        self.report.sync_stats.barrier(self.sim.now, st.index)
        self.perf.record(self.sim.now, -1, EventCode.BARRIER, st.index)
        self._complete(st)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _cluster_task_done(self, st: _InstrState, items: Optional[List] = None) -> None:
        if items:
            st.collected.extend(items)
        st.clusters_remaining -= 1
        if st.clusters_remaining > 0:
            return
        instr = st.instr
        if isinstance(instr, Propagate):
            st.scan_done = True
            self._check_propagate_done(st)
            return
        if instr.category == Category.COLLECT:
            self._gather_results(st)
            return
        self._complete(st)

    def _gather_results(self, st: _InstrState) -> None:
        """Controller retrieves items from each cluster's dual-port.

        Dominant overhead of Fig. 21: cost grows with the number of
        clusters (per-cluster setup) plus per-item transfer.
        """
        service = (
            len(self.alive_clusters) * self.timing.t_collect_cluster
            + len(st.collected) * self.timing.t_collect_item
        )
        self.report.overheads.collection += service
        self._attribute(Category.COLLECT, service)
        self.perf.record(self.sim.now, -1, EventCode.COLLECT, st.index)
        st.collected.sort(key=lambda item: item[0])
        job = Job(service, on_done=self._complete, args=(st,))
        if self._tr is not None and st.span is not None:
            self._trace_phase(st, "gather")
            job = self._traced_span_job(
                self._tk_ctrl, f"collect #{st.index}", job
            )
        self.controller.submit(job)

    def _complete(self, st: _InstrState) -> None:
        instr = st.instr
        ctx = st.ctx
        self._traces[st.index] = InstructionTrace(
            index=st.index,
            opcode=instr.opcode,
            category=instr.category,
            issue_time=st.issue_time,
            complete_time=self.sim.now,
            alpha=ctx.alpha if ctx else 0,
            max_hops=ctx.max_hops if ctx else 0,
            remote_messages=ctx.remote_messages if ctx else 0,
            arrivals=ctx.total_arrivals if ctx else 0,
            work_ops=st.work_ops,
            result=list(st.collected) if st.collected else (
                [] if instr.category == Category.COLLECT else None
            ),
        )
        self.perf.record(self.sim.now, -1, EventCode.INSTR_COMPLETE, st.index)
        if self._tr is not None:
            self._trace_complete(st)
        del self._in_flight[st.index]
        if (
            self._fault_event_handle is not None
            and not self._in_flight
            and self._pc >= len(self._program)
        ):
            # The program is done: drop any fault events still in the
            # future so they don't stretch total_time_us.
            self.sim.cancel(self._fault_event_handle)
            self._fault_event_handle = None
        self._try_issue()

    # ------------------------------------------------------------------
    def _attribute(self, category: str, busy: float) -> None:
        self.report.category_busy_us[category] = (
            self.report.category_busy_us.get(category, 0.0) + busy
        )


