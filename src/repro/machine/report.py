"""Run reports: everything the measurement system gathers in one run.

The paper's *"integrated measurement system for evaluating
marker-propagation algorithms, partitioning functions, communication
traffic, and synchronization protocols"* (§II-B) corresponds to this
module: per-instruction traces, per-category busy time (Figs. 6/18/19),
instruction counts (Fig. 20), the four parallel-overhead components
(Fig. 21), sync-point traffic (Fig. 8), and α/path-length statistics
(§IV text).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..isa.instructions import Category
from .icn import IcnStats
from .sync import SyncStats


def _json_safe(value: Any) -> Any:
    """Coerce an arbitrary value into something ``json.dump`` accepts.

    :attr:`InstructionTrace.result` is typed ``Any`` — retrieval
    instructions store whatever the collection phase produced (node-name
    lists today, but nothing enforces that).  Containers are converted
    recursively (sets sorted by ``repr`` for a deterministic dump,
    mapping keys stringified); anything else falls back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return [_json_safe(item) for item in sorted(value, key=repr)]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


@dataclass
class InstructionTrace:
    """Timing and work of one executed instruction."""

    index: int
    opcode: str
    category: str
    issue_time: float
    complete_time: float
    alpha: int = 0
    max_hops: int = 0
    remote_messages: int = 0
    arrivals: int = 0
    work_ops: int = 0
    result: Any = None

    @property
    def latency(self) -> float:
        """Issue-to-complete elapsed time, in microseconds."""
        return self.complete_time - self.issue_time


@dataclass
class OverheadBreakdown:
    """The four components of parallel overhead (Fig. 21), in µs."""

    broadcast: float = 0.0
    communication: float = 0.0
    synchronization: float = 0.0
    collection: float = 0.0

    def total(self) -> float:
        """Aggregate value across fields."""
        return (
            self.broadcast + self.communication
            + self.synchronization + self.collection
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (JSON-friendly)."""
        return {
            "broadcast": self.broadcast,
            "communication": self.communication,
            "synchronization": self.synchronization,
            "collection": self.collection,
        }


@dataclass
class MachineRunReport:
    """Full measurement record of one program execution."""

    total_time_us: float = 0.0
    traces: List[InstructionTrace] = field(default_factory=list)
    #: MU busy time attributed to each instruction category (µs).
    category_busy_us: Dict[str, float] = field(default_factory=dict)
    overheads: OverheadBreakdown = field(default_factory=OverheadBreakdown)
    sync_stats: SyncStats = field(default_factory=SyncStats)
    icn_stats: IcnStats = field(default_factory=IcnStats)
    cluster_busy: List[Dict[str, float]] = field(default_factory=list)
    #: Raw monitoring records from the performance-collection network.
    perf_records: List = field(default_factory=list)
    events_processed: int = 0
    num_clusters: int = 0
    total_pes: int = 0
    #: Set only when the run had an enabled fault layer; fault-free
    #: reports (and their JSON dumps) are byte-identical to pre-fault
    #: builds.
    faults_enabled: bool = False
    fault_stats: Optional[Any] = None
    #: True when the run was cut off by a ``budget_us`` watchdog before
    #: completing (traces cover only the instructions that finished).
    aborted: bool = False

    # ------------------------------------------------------------------
    @property
    def total_time_ms(self) -> float:
        """Total simulated time in milliseconds."""
        return self.total_time_us / 1e3

    @property
    def total_time_s(self) -> float:
        """Total simulated time in seconds."""
        return self.total_time_us / 1e6

    def results(self) -> List[Any]:
        """Collected retrieval results, in program order."""
        return [t.result for t in self.traces if t.result is not None]

    def category_counts(self) -> Dict[str, int]:
        """Instruction counts per category (Fig. 6 frequency axis)."""
        counts: Dict[str, int] = {}
        for trace in self.traces:
            counts[trace.category] = counts.get(trace.category, 0) + 1
        return counts

    def category_time_share(self) -> Dict[str, float]:
        """Fraction of attributed busy time per category (Fig. 6)."""
        total = sum(self.category_busy_us.values())
        if total == 0:
            return {}
        return {
            category: busy / total
            for category, busy in self.category_busy_us.items()
        }

    def propagate_count(self) -> int:
        """Number of PROPAGATE instructions executed (Fig. 20)."""
        return sum(
            1 for t in self.traces if t.category == Category.PROPAGATE
        )

    def max_propagation_distance(self) -> int:
        """Longest marker path in hops (§IV: 10–15 steps typical)."""
        return max((t.max_hops for t in self.traces), default=0)

    def alpha_stats(self) -> Dict[str, float]:
        """Source-activation (α) statistics over PROPAGATE instructions."""
        alphas = [
            t.alpha for t in self.traces
            if t.category == Category.PROPAGATE
        ]
        if not alphas:
            return {"min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "min": float(min(alphas)),
            "max": float(max(alphas)),
            "mean": sum(alphas) / len(alphas),
        }

    def mu_utilization(self) -> float:
        """Aggregate MU busy fraction over the run."""
        if self.total_time_us <= 0 or not self.cluster_busy:
            return 0.0
        busy = sum(c["mu_busy"] for c in self.cluster_busy)
        capacity = sum(c["mu_servers"] for c in self.cluster_busy)
        return busy / (capacity * self.total_time_us)

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable dump of the run's measurements.

        Covers everything an external analysis pipeline needs: totals,
        per-instruction traces (with collected results coerced through
        :func:`_json_safe` — ``result`` is ``Any`` and may hold
        non-JSON types), per-category busy time, the overhead
        breakdown, traffic series, and per-cluster utilization.
        (Raw perf records are omitted — export those separately if
        needed.)
        """
        dump: Dict[str, Any] = {
            "total_time_us": self.total_time_us,
            "num_clusters": self.num_clusters,
            "total_pes": self.total_pes,
            "events_processed": self.events_processed,
            "instructions": [self._trace_json(t) for t in self.traces],
            "category_busy_us": dict(self.category_busy_us),
            "overheads_us": self.overheads.as_dict(),
            "messages_per_sync": self.sync_stats.messages_per_sync(),
            "icn": self.icn_stats.to_json(),
            "cluster_busy": [dict(c) for c in self.cluster_busy],
        }
        if self.faults_enabled and self.fault_stats is not None:
            dump["faults"] = self.fault_stats.as_dict()
        if self.aborted:
            dump["aborted"] = True
        return dump

    @staticmethod
    def _trace_json(t: InstructionTrace) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "index": t.index,
            "opcode": t.opcode,
            "category": t.category,
            "issue_us": t.issue_time,
            "complete_us": t.complete_time,
            "latency_us": t.latency,
            "alpha": t.alpha,
            "max_hops": t.max_hops,
            "remote_messages": t.remote_messages,
            "arrivals": t.arrivals,
        }
        if t.result is not None:
            entry["result"] = _json_safe(t.result)
        return entry

    def summary(self) -> Dict[str, Any]:
        """Headline numbers for experiment tables."""
        summary = {
            "time_ms": round(self.total_time_ms, 3),
            "instructions": len(self.traces),
            "propagates": self.propagate_count(),
            "messages": self.icn_stats.messages,
            "mean_msgs_per_sync": round(self.sync_stats.mean_messages, 2),
            "max_path": self.max_propagation_distance(),
            "mu_utilization": round(self.mu_utilization(), 3),
            "overhead_us": {
                k: round(v, 1) for k, v in self.overheads.as_dict().items()
            },
        }
        if self.faults_enabled and self.fault_stats is not None:
            summary["faults_injected"] = self.fault_stats.total_injected()
        return summary
