"""`SnapMachine`: the user-facing façade of the SNAP-1 simulator.

Mirrors the paper's system flow (§II-A): load a knowledge base into
the processing array, download a compiled application, run it, and
retrieve results — with a full measurement report per run.

Example
-------
>>> from repro.network import generate_kb, GeneratorSpec
>>> from repro.machine import SnapMachine, snap1_16cluster
>>> from repro.isa import assemble
>>> machine = SnapMachine(generate_kb(GeneratorSpec(total_nodes=500)),
...                       snap1_16cluster())
>>> report = machine.run(assemble('''
...     SEARCH-NODE word0 b0
...     PROPAGATE b0 b1 chain(is-a)
...     COLLECT-NODE b1
... '''))
>>> report.total_time_us > 0
True
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..core.state import MachineState
from ..isa.instructions import Instruction
from ..isa.program import SnapProgram
from ..network.graph import SemanticNetwork
from .config import MachineConfig, snap1_full
from .icn import HypercubeTopology
from .report import MachineRunReport
from .simulator import SnapSimulation


class SnapMachine:
    """A configured SNAP-1 with a loaded knowledge base.

    The machine keeps persistent knowledge-base state across ``run``
    calls (markers, bindings, and node maintenance survive between
    programs, as on the hardware), while each run gets a fresh
    measurement report.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        config: Optional[MachineConfig] = None,
    ) -> None:
        self.config = config or snap1_full()
        # Graceful degradation: nodes are evicted off failed clusters
        # before the tables are built, so their region of the KB stays
        # reachable on survivors.
        excluded = None
        fault_cfg = self.config.faults
        if fault_cfg is not None and fault_cfg.enabled and fault_cfg.remap_nodes:
            from .faults import failed_clusters_for

            excluded = failed_clusters_for(
                fault_cfg, self.config.num_clusters
            )
        self.state = MachineState(
            network,
            num_clusters=self.config.num_clusters,
            partition_policy=self.config.partition_policy,
            node_capacity_per_cluster=(
                self.config.nodes_per_cluster
                if self.config.enforce_capacity
                else None
            ),
            excluded_clusters=excluded,
        )
        # One topology per machine, shared by every run: routing is
        # stateless, so sharing only lets the route/dimension caches
        # stay warm across programs (a big win for host serving, where
        # one machine executes thousands of queries).
        self.topology = HypercubeTopology(self.config.num_clusters)
        self.last_report: Optional[MachineRunReport] = None
        #: Process name this machine's tracks are filed under in a
        #: trace (the host layer sets one per replica, e.g.
        #: ``replica 03``).
        self.trace_name = "machine"

    # ------------------------------------------------------------------
    def run(
        self,
        program: Union[SnapProgram, Iterable[Instruction]],
        budget_us: Optional[float] = None,
        tracer=None,
        metrics=None,
        trace_offset_us: float = 0.0,
    ) -> MachineRunReport:
        """Execute a program with full timing; returns the run report.

        ``budget_us`` caps the simulated execution time: a run that has
        not completed by the budget is abandoned (``report.aborted`` is
        set) with the clock parked exactly on the budget.  The serving
        host uses this to bound nested executions by a query deadline;
        the default (``None``) is the unchanged run-to-completion path.

        ``tracer``/``metrics`` opt the run into the observability
        layer (:mod:`repro.obs`); ``trace_offset_us`` shifts every
        emitted timestamp, which the serving host uses to place a
        nested per-query run at the host time it dispatched.  The
        defaults (global :data:`repro.obs.NULL_TRACER`, no registry)
        cost one branch per run.
        """
        if not isinstance(program, SnapProgram):
            program = SnapProgram(list(program))
        simulation = SnapSimulation(
            self.state, self.config, topology=self.topology,
            tracer=tracer, metrics=metrics,
            trace_offset_us=trace_offset_us,
            trace_name=self.trace_name,
        )
        self.last_report = simulation.run(program, budget_us=budget_us)
        return self.last_report

    def reset_markers(self) -> None:
        """Wipe all marker state (host hand-over between queries)."""
        self.state.reset_markers()

    def run_and_collect(
        self, program: Union[SnapProgram, Iterable[Instruction]]
    ) -> List:
        """Run and return just the retrieval results, in program order."""
        return self.run(program).results()

    # -- inspection ------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.state.network.num_nodes

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return self.config.num_clusters

    @property
    def total_pes(self) -> int:
        """All functional units: PU + CU + MUs per cluster."""
        return self.config.total_pes

    def marker_set_nodes(self, marker: int) -> List[int]:
        """Global ids of nodes where ``marker`` is currently set."""
        return self.state.marker_set_nodes(marker)

    def housekeep(self) -> int:
        """Controller housekeeping between programs (§III-C).

        *"When the pipeline is empty, housekeeping is performed
        including node management and garbage collection."*  Returns
        the number of result-node slots reclaimed.
        """
        return self.state.garbage_collect()
