"""A small discrete-event simulation kernel.

Time is a float in **microseconds** of simulated machine time.  The
kernel provides an event heap, deterministic FIFO tie-breaking, and two
building blocks used by the SNAP-1 component models: a multi-server
resource (the MU pool of a cluster) and a single server (PU, CU,
global bus, SCP).

Determinism: events scheduled for the same timestamp fire in schedule
order (a monotone sequence number breaks ties), so simulations are
bit-reproducible.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Event heap + clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[_Event] = []
        self._seq = 0
        self.events_processed = 0
        #: Timestamp of the last event actually processed (unlike
        #: ``now``, never advanced by an empty ``run(until=...)``).
        self.last_event_us = 0.0

    def schedule(self, delay: float, fn: Callable[[], None]) -> _Event:
        """Run ``fn`` after ``delay`` microseconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        event = _Event(self.now + delay, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: _Event) -> None:
        """Cancel a scheduled event (lazy removal)."""
        event.cancelled = True

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap empties (or ``until`` passes).

        Boundary semantics (inclusive): events scheduled *exactly* at
        ``until`` fire — including events an earlier handler schedules
        with ``schedule(0, fn)`` while the clock sits at ``until``.
        Only events strictly later than ``until`` stay queued.  The
        clock always lands on exactly ``until`` when one is given,
        even if the heap empties earlier, so back-to-back
        ``run(until=...)`` calls advance time deterministically.

        ``schedule(0, fn)`` during event processing is deterministic:
        the new event carries the current time and the next sequence
        number, so it fires after every already-queued event of the
        same timestamp, in submission order (FIFO tie-breaking).

        Returns the final simulated time.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._heap, event)
                break
            self.now = event.time
            self.last_event_us = event.time
            self.events_processed += 1
            event.fn()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending(self) -> int:
        """Events still scheduled (uncancelled)."""
        return sum(1 for e in self._heap if not e.cancelled)


class Timeout:
    """A cancellable watchdog over a guarded operation.

    Schedules ``on_timeout`` after ``delay`` microseconds; if the
    guarded operation completes first, :meth:`cancel` disarms the
    watchdog.  Used by the fault layer to enforce per-transfer
    recovery budgets (a transfer that cannot be repaired within its
    budget of simulated time is declared failed).
    """

    def __init__(
        self, sim: Simulator, delay: float, on_timeout: Callable[[], None]
    ) -> None:
        self._sim = sim
        self._on_timeout = on_timeout
        self._cancelled = False
        self.expired = False
        self._event = sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.expired = True
        self._on_timeout()

    def cancel(self) -> None:
        """Disarm the watchdog (the guarded operation completed)."""
        self._cancelled = True
        self._sim.cancel(self._event)

    @property
    def armed(self) -> bool:
        """Whether the watchdog can still fire."""
        return not self._cancelled and not self.expired


@dataclass
class Job:
    """A unit of work submitted to a server: service time + completion."""

    service_time: float
    on_start: Optional[Callable[[], None]] = None
    on_done: Optional[Callable[[], None]] = None
    tag: Any = None


class Server:
    """A single FIFO server (models PU decode, CU DMA, bus, SCP).

    Tracks busy time and queue-length statistics so component
    utilization can be reported.

    ``penalty_hook`` is the fault-injection hook: when set, it is
    consulted as each job enters service and may return extra service
    microseconds (e.g. a transient SCP/bus timeout penalty).  Left at
    ``None`` — the default — the server's behavior is bit-identical to
    a hook-free build.
    """

    def __init__(self, sim: Simulator, name: str = "server") -> None:
        self.sim = sim
        self.name = name
        self._queue: Deque[Job] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.jobs_done = 0
        self.max_queue = 0
        self.penalty_hook: Optional[Callable[[Job], float]] = None

    @property
    def busy(self) -> bool:
        """Whether the server is currently serving a job."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Jobs waiting (excluding in service)."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """Whether no work is queued or in service."""
        return not self._busy and not self._queue

    def submit(self, job: Job) -> None:
        """Enqueue a job; service starts when capacity frees."""
        self._queue.append(job)
        self.max_queue = max(self.max_queue, len(self._queue))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        job = self._queue.popleft()
        if job.on_start:
            job.on_start()
        service = job.service_time
        if self.penalty_hook is not None:
            service += self.penalty_hook(job)
        self.busy_time += service
        self.sim.schedule(service, lambda: self._finish(job))

    def _finish(self, job: Job) -> None:
        self.jobs_done += 1
        if job.on_done:
            job.on_done()
        self._start_next()


class ServerPool:
    """``k`` identical FIFO servers sharing one queue (the MU pool)."""

    def __init__(self, sim: Simulator, servers: int, name: str = "pool") -> None:
        if servers < 1:
            raise SimulationError("pool needs at least one server")
        self.sim = sim
        self.name = name
        self.num_servers = servers
        self._queue: Deque[Job] = deque()
        self._busy = 0
        self.busy_time = 0.0
        self.jobs_done = 0
        self.max_queue = 0
        #: Fault-injection hook; see :class:`Server`.
        self.penalty_hook: Optional[Callable[[Job], float]] = None

    @property
    def busy_servers(self) -> int:
        """Servers currently serving jobs."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Jobs waiting (excluding in service)."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """Whether no work is queued or in service."""
        return self._busy == 0 and not self._queue

    def submit(self, job: Job) -> None:
        """Enqueue a job; service starts when capacity frees."""
        self._queue.append(job)
        self.max_queue = max(self.max_queue, len(self._queue))
        if self._busy < self.num_servers:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue or self._busy >= self.num_servers:
            return
        job = self._queue.popleft()
        self._busy += 1
        if job.on_start:
            job.on_start()
        service = job.service_time
        if self.penalty_hook is not None:
            service += self.penalty_hook(job)
        self.busy_time += service
        self.sim.schedule(service, lambda: self._finish(job))

    def _finish(self, job: Job) -> None:
        self._busy -= 1
        self.jobs_done += 1
        if job.on_done:
            job.on_done()
        self._start_next()


def utilization(busy_time: float, servers: int, elapsed: float) -> float:
    """Fraction of capacity used over an interval."""
    if elapsed <= 0:
        return 0.0
    return busy_time / (servers * elapsed)
