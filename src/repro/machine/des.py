"""A small discrete-event simulation kernel.

Time is a float in **microseconds** of simulated machine time.  The
kernel provides an event heap, deterministic FIFO tie-breaking, and two
building blocks used by the SNAP-1 component models: a multi-server
resource (the MU pool of a cluster) and a single server (PU, CU,
global bus, SCP).

Determinism: events scheduled for the same timestamp fire in schedule
order (a monotone sequence number breaks ties), so simulations are
bit-reproducible.

Hot-path design (see ``docs/PERF.md``): heap entries are plain lists
``[time, seq, fn, args]`` so ``heapq`` compares them with C-level
tuple ordering (the unique ``seq`` guarantees the comparison never
reaches ``fn``); ``schedule`` accepts positional callback arguments so
callers can pass one reusable bound method instead of allocating a
closure per event; cancellation is O(1) lazy removal with a live-event
counter, and the heap is compacted in bulk once cancelled entries
outnumber live ones — so cancellation-heavy serving runs (hedges,
deadline watchdogs) neither leak memory nor pay per-entry pop costs.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling in the past)."""


#: Heap entry layout: ``[time, seq, fn, args]``.  A cancelled (or
#: already-fired) entry has ``fn`` set to ``None``; it stays in the
#: heap until popped or compacted away.
_Event = list

#: Compaction trigger: cancelled entries must exceed this count *and*
#: outnumber live entries before the heap is rebuilt.  Keeps the
#: amortized cost O(1) per cancellation while bounding heap growth to
#: ~2x the live-event count for cancellation-heavy workloads.
COMPACT_THRESHOLD = 512


class Simulator:
    """Event heap + clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[_Event] = []
        self._seq = 0
        self.events_processed = 0
        #: Timestamp of the last event actually processed (unlike
        #: ``now``, never advanced by an empty ``run(until=...)``).
        self.last_event_us = 0.0
        #: Scheduled events that are neither fired nor cancelled.
        self._live = 0
        #: Cancelled entries still occupying heap slots.
        self._dead = 0

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> _Event:
        """Run ``fn(*args)`` after ``delay`` microseconds of simulated
        time.  Returns a handle accepted by :meth:`cancel`."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        event = [self.now + delay, self._seq, fn, args]
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def reserve(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> _Event:
        """Create an event for a known future instant *without* putting
        it in the heap yet.

        The sequence number is assigned immediately, so a caller that
        knows its whole schedule up front (the serving host's arrival
        stream) can fix the FIFO tie-break order of all its events
        first and still keep the heap as shallow as the live horizon:
        heap-operation cost scales with events actually in flight, not
        with the total stream length.  The caller owns delivery — each
        reserved event must be handed to :meth:`commit` before the
        clock reaches its time, and must not be cancelled while
        uncommitted.  Reserved events count as pending.
        """
        if time < self.now:
            raise SimulationError(f"reserve in the past: {time} < {self.now}")
        event = [time, self._seq, fn, args]
        self._seq += 1
        self._live += 1
        return event

    def commit(self, event: _Event) -> None:
        """Enter a :meth:`reserve`-d event into the heap."""
        heapq.heappush(self._heap, event)

    def cancel(self, event: _Event) -> None:
        """Cancel a scheduled event (lazy O(1) removal).

        Cancelling an event that already fired (or was already
        cancelled) is a no-op.  Dead entries are purged in bulk by
        :meth:`_compact` once they outnumber live ones.
        """
        if event[2] is None:
            return
        event[2] = None
        event[3] = ()
        self._live -= 1
        self._dead += 1
        if self._dead > COMPACT_THRESHOLD and self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Rebuilding cannot change the firing order: pop order is a
        function of the total ``(time, seq)`` order alone, not of the
        heap's internal layout.
        """
        self._heap = [e for e in self._heap if e[2] is not None]
        heapq.heapify(self._heap)
        self._dead = 0

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap empties (or ``until`` passes).

        Boundary semantics (inclusive): events scheduled *exactly* at
        ``until`` fire — including events an earlier handler schedules
        with ``schedule(0, fn)`` while the clock sits at ``until``.
        Only events strictly later than ``until`` stay queued.  The
        clock always lands on exactly ``until`` when one is given,
        even if the heap empties earlier, so back-to-back
        ``run(until=...)`` calls advance time deterministically.

        ``schedule(0, fn)`` during event processing is deterministic:
        the new event carries the current time and the next sequence
        number, so it fires after every already-queued event of the
        same timestamp, in submission order (FIFO tie-breaking).

        ``events_processed``, ``pending``, and ``last_event_us`` are
        flushed once per :meth:`run` call, not per event — callbacks
        must not read them mid-run (none do; they are post-run report
        inputs).

        Returns the final simulated time.
        """
        heap = self._heap
        heappop = heapq.heappop
        fired = 0
        last = self.last_event_us
        try:
            if until is None:
                while heap:
                    event = heappop(heap)
                    fn = event[2]
                    if fn is None:
                        self._dead -= 1
                        continue
                    args = event[3]
                    # Mark consumed: a late cancel() of this handle is
                    # a no-op, and callback/argument refs are released.
                    event[2] = None
                    event[3] = ()
                    last = event[0]
                    self.now = last
                    fired += 1
                    fn(*args)
                    heap = self._heap  # _compact() may swap the list
            else:
                while heap:
                    event = heap[0]
                    fn = event[2]
                    if fn is None:
                        heappop(heap)
                        self._dead -= 1
                        continue
                    event_time = event[0]
                    if event_time > until:
                        break
                    heappop(heap)
                    args = event[3]
                    event[2] = None
                    event[3] = ()
                    last = event_time
                    self.now = event_time
                    fired += 1
                    fn(*args)
                    heap = self._heap
        finally:
            self._live -= fired
            self.events_processed += fired
            self.last_event_us = last
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_traced(
        self,
        tracer,
        track: int,
        until: Optional[float] = None,
        sample_every: int = 256,
        ts_offset: float = 0.0,
    ) -> float:
        """:meth:`run` with kernel observability (opt-in slow path).

        Identical boundary/tie-break semantics and event ordering to
        :meth:`run` — the only additions are a ``des.run`` span
        covering the dispatch window and a ``heap`` counter sample
        (heap slots, live pending events) every ``sample_every``
        events, all on the caller-supplied ``track`` of the given
        :class:`repro.obs.tracer.Tracer`.  ``ts_offset`` shifts every
        emitted timestamp — a nested simulation (a replica serving one
        query) places its kernel activity at the host time it ran.

        Kept as a separate loop so the hot :meth:`run` path pays
        nothing for instrumentation — callers branch once per run, not
        once per event (the ≤5 % disabled-overhead contract in
        ``docs/OBSERVABILITY.md``).
        """
        heap = self._heap
        heappop = heapq.heappop
        fired = 0
        last = self.last_event_us
        span = tracer.begin(track, "des.run", ts_offset + self.now)
        counter = tracer.counter
        try:
            while heap:
                event = heap[0]
                fn = event[2]
                if fn is None:
                    heappop(heap)
                    self._dead -= 1
                    continue
                event_time = event[0]
                if until is not None and event_time > until:
                    break
                heappop(heap)
                args = event[3]
                event[2] = None
                event[3] = ()
                last = event_time
                self.now = event_time
                fired += 1
                fn(*args)
                heap = self._heap  # _compact() may swap the list
                if fired % sample_every == 0:
                    counter(track, "heap", ts_offset + self.now, {
                        "heap_size": len(heap),
                        "pending": self._live - fired,
                    })
        finally:
            self._live -= fired
            self.events_processed += fired
            self.last_event_us = last
        if until is not None and until > self.now:
            self.now = until
        tracer.end(span, ts_offset + self.now, events=fired)
        counter(track, "heap", ts_offset + self.now, {
            "heap_size": len(self._heap), "pending": self._live,
        })
        return self.now

    @property
    def pending(self) -> int:
        """Events still scheduled (uncancelled).  O(1)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Heap slots in use, including not-yet-purged cancelled
        entries (bounded to ~2x ``pending`` by compaction)."""
        return len(self._heap)


class Timeout:
    """A cancellable watchdog over a guarded operation.

    Schedules ``on_timeout(*args)`` after ``delay`` microseconds; if
    the guarded operation completes first, :meth:`cancel` disarms the
    watchdog.  Used by the fault layer to enforce per-transfer
    recovery budgets (a transfer that cannot be repaired within its
    budget of simulated time is declared failed) and by the serving
    host's per-query deadline watchdogs.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        on_timeout: Callable[..., None],
        *args: Any,
    ) -> None:
        self._sim = sim
        self._on_timeout = on_timeout
        self._args = args
        self._cancelled = False
        self.expired = False
        self._event = sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.expired = True
        self._on_timeout(*self._args)

    def cancel(self) -> None:
        """Disarm the watchdog (the guarded operation completed)."""
        self._cancelled = True
        self._sim.cancel(self._event)

    @property
    def armed(self) -> bool:
        """Whether the watchdog can still fire."""
        return not self._cancelled and not self.expired


@dataclass
class Job:
    """A unit of work submitted to a server: service time + completion.

    ``on_done`` is invoked as ``on_done(*args)`` when service
    completes, so hot paths can pass a reusable bound method plus its
    arguments instead of building a fresh closure per job.
    """

    service_time: float
    on_start: Optional[Callable[[], None]] = None
    on_done: Optional[Callable[..., None]] = None
    tag: Any = None
    args: Tuple[Any, ...] = ()


class Server:
    """A single FIFO server (models PU decode, CU DMA, bus, SCP).

    Tracks busy time and queue-length statistics so component
    utilization can be reported.  ``busy_time`` accrues a job's full
    service when the job *starts* (which keeps accrual order — and
    float summation order — independent of completion interleaving);
    :meth:`busy_time_until` pro-rates the in-service job so a run cut
    off mid-service (a ``budget_us`` abort) never reports more busy
    time than actually elapsed.

    ``penalty_hook`` is the fault-injection hook: when set, it is
    consulted as each job enters service and may return extra service
    microseconds (e.g. a transient SCP/bus timeout penalty).  Left at
    ``None`` — the default — the server's behavior is bit-identical to
    a hook-free build.
    """

    def __init__(self, sim: Simulator, name: str = "server") -> None:
        self.sim = sim
        self.name = name
        self._queue: Deque[Job] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.jobs_done = 0
        self.max_queue = 0
        self.penalty_hook: Optional[Callable[[Job], float]] = None
        #: Completion timestamp of the job in service (valid when busy).
        self._service_end = 0.0
        #: Reusable completion callback (no per-job closure).
        self._finish_cb = self._finish

    @property
    def busy(self) -> bool:
        """Whether the server is currently serving a job."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Jobs waiting (excluding in service)."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """Whether no work is queued or in service."""
        return not self._busy and not self._queue

    def submit(self, job: Job) -> None:
        """Enqueue a job; service starts when capacity frees."""
        self._queue.append(job)
        if len(self._queue) > self.max_queue:
            self.max_queue = len(self._queue)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        job = self._queue.popleft()
        if job.on_start:
            job.on_start()
        service = job.service_time
        if self.penalty_hook is not None:
            service += self.penalty_hook(job)
        self.busy_time += service
        event = self.sim.schedule(service, self._finish_cb, job)
        self._service_end = event[0]

    def _finish(self, job: Job) -> None:
        self.jobs_done += 1
        if job.on_done:
            job.on_done(*job.args)
        self._start_next()

    def busy_time_until(self, now: float) -> float:
        """Busy time actually *elapsed* by ``now``.

        Equals ``busy_time`` once every started job has completed; a
        job still in service contributes only its elapsed portion, so
        aborted runs cannot report utilization above capacity.
        """
        if self._busy and self._service_end > now:
            return self.busy_time - (self._service_end - now)
        return self.busy_time


class ServerPool:
    """``k`` identical FIFO servers sharing one queue (the MU pool)."""

    def __init__(self, sim: Simulator, servers: int, name: str = "pool") -> None:
        if servers < 1:
            raise SimulationError("pool needs at least one server")
        self.sim = sim
        self.name = name
        self.num_servers = servers
        #: Largest capacity the pool ever had (resize() can grow it).
        self.peak_servers = servers
        self._queue: Deque[Job] = deque()
        self._busy = 0
        self.busy_time = 0.0
        self.jobs_done = 0
        self.max_queue = 0
        #: Fault-injection hook; see :class:`Server`.
        self.penalty_hook: Optional[Callable[[Job], float]] = None
        #: Completion timestamps of the jobs in service.
        self._service_ends: List[float] = []
        self._finish_cb = self._finish

    @property
    def busy_servers(self) -> int:
        """Servers currently serving jobs."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Jobs waiting (excluding in service)."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """Whether no work is queued or in service."""
        return self._busy == 0 and not self._queue

    def submit(self, job: Job) -> None:
        """Enqueue a job; service starts when capacity frees."""
        self._queue.append(job)
        if len(self._queue) > self.max_queue:
            self.max_queue = len(self._queue)
        if self._busy < self.num_servers:
            self._start_next()

    def submit_batch(self, jobs: List[Job]) -> None:
        """Enqueue a fan-out of jobs in one call.

        Exactly equivalent to submitting each job in order — the queue
        contents, start order, and event sequence numbers are
        bit-identical — but the per-job call overhead is paid once per
        batch, which is how the simulator delivers a PROPAGATE fan-out
        to a destination cluster as one aggregated submission.
        """
        queue = self._queue
        num_servers = self.num_servers
        for job in jobs:
            queue.append(job)
            if len(queue) > self.max_queue:
                self.max_queue = len(queue)
            if self._busy < num_servers:
                self._start_next()

    def resize(self, servers: int) -> None:
        """Change pool capacity mid-run (fault-timeline MU loss/restore).

        Shrinking never preempts jobs already in service — the pool
        just stops starting new work until occupancy falls below the
        new capacity.  Growing immediately starts queued jobs in FIFO
        order, exactly as if the extra servers had been idle.
        ``peak_servers`` tracks the largest capacity the pool ever
        had, so utilization accounting stays bounded by real capacity.
        """
        if servers < 1:
            raise SimulationError("pool needs at least one server")
        self.num_servers = servers
        if servers > self.peak_servers:
            self.peak_servers = servers
        while self._queue and self._busy < self.num_servers:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue or self._busy >= self.num_servers:
            return
        job = self._queue.popleft()
        self._busy += 1
        if job.on_start:
            job.on_start()
        service = job.service_time
        if self.penalty_hook is not None:
            service += self.penalty_hook(job)
        self.busy_time += service
        event = self.sim.schedule(service, self._finish_cb, job)
        self._service_ends.append(event[0])

    def _finish(self, job: Job) -> None:
        self._busy -= 1
        self._service_ends.remove(self.sim.now)
        self.jobs_done += 1
        if job.on_done:
            job.on_done(*job.args)
        self._start_next()

    def busy_time_until(self, now: float) -> float:
        """Busy time actually *elapsed* by ``now`` (see
        :meth:`Server.busy_time_until`)."""
        total = self.busy_time
        for end in self._service_ends:
            if end > now:
                total -= end - now
        return total


def utilization(busy_time: float, servers: int, elapsed: float) -> float:
    """Fraction of capacity used over an interval."""
    if elapsed <= 0:
        return 0.0
    return busy_time / (servers * elapsed)
