"""Marker activation messages.

When propagation reaches a node stored on another cluster, *"an
activation message is placed in the marker activation memory for
transmission by the CU"* (§III-A).  *"The length of the message is
64 b and includes the marker, value, function, destination address,
first origin address, and propagation rule"* (§III-B).

:class:`ActivationMessage` is the in-simulator representation (it keeps
full-precision values and object references so functional execution is
exact); :meth:`ActivationMessage.pack` /
:func:`unpack` implement the literal 64-bit wire format with the same
field budget the hardware used — the 32-bit value is truncated to
bfloat16 on the wire, and the propagation rule travels as a small
index into the compile-time-downloaded rule table.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..isa.rules import PropagationRule

#: Wire-field widths, in bits (they sum to 64).
FIELD_WIDTHS = {
    "marker": 7,        # 128 markers
    "value": 16,        # bfloat16 truncation of the float32 value
    "function": 6,      # hop-function token
    "rule": 3,          # index into the downloaded rule table
    "state": 2,         # rule state machine position
    "dest_cluster": 5,  # 32 clusters
    "dest_local": 10,   # 1024 nodes/cluster
    "origin": 15,       # first-origin global node id (32K nodes)
}

MESSAGE_BITS = 64
MESSAGE_BYTES = MESSAGE_BITS // 8

assert sum(FIELD_WIDTHS.values()) == MESSAGE_BITS


class MessageError(ValueError):
    """Raised when a message field exceeds its wire width."""


def to_bfloat16_bits(value: float) -> int:
    """Top 16 bits of the IEEE-754 float32 encoding."""
    return int(np.float32(value).view(np.uint32)) >> 16


def from_bfloat16_bits(bits: int) -> float:
    """Reconstruct a float from its bfloat16 bits."""
    return float(np.uint32(bits << 16).view(np.float32))


@dataclass
class ActivationMessage:
    """A marker in flight between clusters (or between waves locally).

    ``level`` is the propagation tier used by the tiered barrier
    synchronization protocol (§III-C); ``hops`` counts link traversals
    so path-length statistics can be gathered; neither travels on the
    wire (the tier is reported through the sync network instead).
    """

    marker: int
    value: float
    function: int
    rule: PropagationRule
    state: int
    dest_cluster: int
    dest_local: int
    origin: int
    level: int = 0
    hops: int = 0

    def pack(self, rule_table: Sequence[PropagationRule]) -> int:
        """Encode to the 64-bit wire format.

        ``rule_table`` is the program's downloaded rule table; the
        message carries only this rule's index.
        """
        try:
            rule_index = rule_table.index(self.rule)
        except ValueError:
            raise MessageError("rule not in downloaded rule table") from None
        fields = {
            "marker": self.marker,
            "value": to_bfloat16_bits(self.value),
            "function": self.function,
            "rule": rule_index,
            "state": self.state,
            "dest_cluster": self.dest_cluster,
            "dest_local": self.dest_local,
            "origin": self.origin if self.origin >= 0 else 0,
        }
        raw = 0
        shift = 0
        for name, width in FIELD_WIDTHS.items():
            val = fields[name]
            if not 0 <= val < (1 << width):
                raise MessageError(
                    f"field {name}={val} exceeds {width}-bit wire width"
                )
            raw |= val << shift
            shift += width
        return raw

    def to_bytes(self, rule_table: Sequence[PropagationRule]) -> bytes:
        """Wire bytes, little-endian."""
        return struct.pack("<Q", self.pack(rule_table))


def unpack(
    raw: int,
    rule_table: Sequence[PropagationRule],
    level: int = 0,
    hops: int = 0,
) -> ActivationMessage:
    """Decode a 64-bit wire word back to a message.

    The value comes back bfloat16-truncated (the hardware's actual
    precision on the wire).
    """
    fields = {}
    shift = 0
    for name, width in FIELD_WIDTHS.items():
        fields[name] = (raw >> shift) & ((1 << width) - 1)
        shift += width
    rule_index = fields["rule"]
    if rule_index >= len(rule_table):
        raise MessageError(f"rule index {rule_index} outside rule table")
    return ActivationMessage(
        marker=fields["marker"],
        value=from_bfloat16_bits(fields["value"]),
        function=fields["function"],
        rule=rule_table[rule_index],
        state=fields["state"],
        dest_cluster=fields["dest_cluster"],
        dest_local=fields["dest_local"],
        origin=fields["origin"],
        level=level,
        hops=hops,
    )


def from_bytes(
    data: bytes, rule_table: Sequence[PropagationRule]
) -> ActivationMessage:
    """Decode wire bytes (inverse of :meth:`ActivationMessage.to_bytes`)."""
    if len(data) != MESSAGE_BYTES:
        raise MessageError(
            f"activation messages are {MESSAGE_BYTES} bytes, got {len(data)}"
        )
    (raw,) = struct.unpack("<Q", data)
    return unpack(raw, rule_table)
