"""The functional (untimed) SNAP executor.

Runs SNAP programs to completion with exact semantics but no notion of
time.  It is both the **serial baseline's** execution core and the
**golden model** against which the discrete-event machine simulator is
property-tested: both drive the same :class:`~repro.core.state.
MachineState` primitives, so final marker state must agree bit-for-bit
for any program and any cluster count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..isa.instructions import (
    AndMarker,
    ClearMarker,
    CollectColor,
    CollectMarker,
    CollectNode,
    CollectRelation,
    Create,
    Delete,
    FuncMarker,
    Instruction,
    MarkerCreate,
    MarkerDelete,
    MarkerSetColor,
    NotMarker,
    OrMarker,
    Propagate,
    SearchColor,
    SearchNode,
    SearchRelation,
    SetColor,
    SetMarker,
)
from ..isa.program import SnapProgram
from ..network.graph import SemanticNetwork
from .state import ExecutionError, MachineState, WorkReport


@dataclass
class ExecutionRecord:
    """What one instruction did: work counters and propagation stats."""

    instruction: Instruction
    work: WorkReport
    result: Any = None
    #: Number of simultaneously activated source nodes (α, §II-C).
    alpha: int = 0
    #: Longest path any marker traveled (hops).
    max_hops: int = 0
    #: Cross-cluster activation messages emitted.
    remote_messages: int = 0
    #: Total marker deliveries.
    arrivals: int = 0

    @property
    def category(self) -> str:
        """The instruction's profiling category."""
        return self.instruction.category

    @property
    def opcode(self) -> str:
        """The instruction's opcode string."""
        return self.instruction.opcode


@dataclass
class RunResult:
    """Outcome of running a whole program."""

    records: List[ExecutionRecord] = field(default_factory=list)

    @property
    def collects(self) -> List[ExecutionRecord]:
        """Records of retrieval instructions, in program order."""
        return [r for r in self.records if r.result is not None]

    def category_counts(self) -> Dict[str, int]:
        """Instruction counts per category."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.category] = counts.get(record.category, 0) + 1
        return counts

    def total_work(self) -> WorkReport:
        """Sum of all instructions' work counters."""
        total = WorkReport()
        for record in self.records:
            total.merge(record.work)
        return total


class FunctionalEngine:
    """Untimed executor of SNAP programs over a partitioned KB."""

    def __init__(
        self,
        network: SemanticNetwork,
        num_clusters: int = 1,
        partition_policy: str = "round-robin",
        state: Optional[MachineState] = None,
    ) -> None:
        self.state = state or MachineState(
            network, num_clusters, partition_policy
        )

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return self.state.num_clusters

    # ------------------------------------------------------------------
    def run(self, program: SnapProgram) -> RunResult:
        """Execute a program in order; return all execution records."""
        result = RunResult()
        for instruction in program:
            result.records.append(self.execute(instruction))
        return result

    def execute(self, instruction: Instruction) -> ExecutionRecord:
        """Execute one instruction with exact semantics."""
        if isinstance(instruction, Propagate):
            return self._propagate(instruction)
        if isinstance(instruction, Create):
            return ExecutionRecord(instruction, self.state.create(instruction))
        if isinstance(instruction, Delete):
            return ExecutionRecord(instruction, self.state.delete(instruction))
        if isinstance(instruction, SetColor):
            return ExecutionRecord(
                instruction, self.state.set_color(instruction)
            )

        per_cluster = {
            SearchNode: self.state.search_node,
            SearchRelation: self.state.search_relation,
            SearchColor: self.state.search_color,
            AndMarker: self.state.and_marker,
            OrMarker: self.state.or_marker,
            NotMarker: self.state.not_marker,
            SetMarker: self.state.set_marker,
            ClearMarker: self.state.clear_marker,
            FuncMarker: self.state.func_marker,
            MarkerCreate: self.state.marker_create,
            MarkerDelete: self.state.marker_delete,
            MarkerSetColor: self.state.marker_set_color,
        }
        collectors = {
            CollectNode: self.state.collect_node,
            CollectMarker: self.state.collect_marker,
            CollectRelation: self.state.collect_relation,
            CollectColor: self.state.collect_color,
        }

        for cls, primitive in per_cluster.items():
            if isinstance(instruction, cls):
                work = WorkReport()
                for cid in range(self.state.num_clusters):
                    work.merge(primitive(cid, instruction))
                return ExecutionRecord(instruction, work)

        for cls, primitive in collectors.items():
            if isinstance(instruction, cls):
                work = WorkReport()
                collected: List = []
                for cid in range(self.state.num_clusters):
                    part, part_work = primitive(cid, instruction)
                    collected.extend(part)
                    work.merge(part_work)
                collected.sort(key=lambda item: item[0])
                return ExecutionRecord(instruction, work, result=collected)

        raise ExecutionError(
            f"unsupported instruction: {instruction.opcode}"
        )

    # ------------------------------------------------------------------
    def _propagate(self, instruction: Propagate) -> ExecutionRecord:
        """Breadth-first marker propagation over all partitions."""
        state = self.state
        ctx = state.make_context(instruction)
        work = WorkReport()
        queue = deque()

        for cid in range(state.num_clusters):
            seeds, seed_work = state.seeds(ctx, cid)
            work.merge(seed_work)
            # Seeds are expanded directly: the origin node re-emits the
            # marker without receiving it.
            for seed in seeds:
                local_out, remote_out, expand_work = state.expand(ctx, seed)
                work.merge(expand_work)
                queue.extend(local_out)
                queue.extend(state.message_to_arrival(m) for m in remote_out)

        while queue:
            arrival = queue.popleft()
            should_expand, deliver_work = state.deliver(ctx, arrival)
            work.merge(deliver_work)
            if not should_expand:
                continue
            local_out, remote_out, expand_work = state.expand(ctx, arrival)
            work.merge(expand_work)
            queue.extend(local_out)
            queue.extend(state.message_to_arrival(m) for m in remote_out)

        return ExecutionRecord(
            instruction,
            work,
            alpha=ctx.alpha,
            max_hops=ctx.max_hops,
            remote_messages=ctx.remote_messages,
            arrivals=ctx.total_arrivals,
        )


def run_program(
    network: SemanticNetwork,
    program: SnapProgram,
    num_clusters: int = 1,
    partition_policy: str = "round-robin",
) -> RunResult:
    """Convenience one-shot: build an engine and run a program."""
    engine = FunctionalEngine(network, num_clusters, partition_policy)
    return engine.run(program)
