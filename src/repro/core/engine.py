"""The functional (untimed) SNAP executor.

Runs SNAP programs to completion with exact semantics but no notion of
time.  It is both the **serial baseline's** execution core and the
**golden model** against which the discrete-event machine simulator is
property-tested: both drive the same :class:`~repro.core.state.
MachineState` primitives, so final marker state must agree bit-for-bit
for any program and any cluster count.

PROPAGATE — the dominant instruction — executes through a pluggable
:class:`~repro.core.backends.PropagationBackend`: the exact-Python
worklist (``"python"``, the golden model) or the wave-synchronous
numpy implementation (``"vectorized"``), selected per engine or
process-wide via :func:`~repro.core.backends.set_default_backend`.
Both produce identical machine state and reports; the equivalence
suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..isa.instructions import (
    AndMarker,
    ClearMarker,
    CollectColor,
    CollectMarker,
    CollectNode,
    CollectRelation,
    Create,
    Delete,
    FuncMarker,
    Instruction,
    MarkerCreate,
    MarkerDelete,
    MarkerSetColor,
    NotMarker,
    OrMarker,
    Propagate,
    SearchColor,
    SearchNode,
    SearchRelation,
    SetColor,
    SetMarker,
)
from ..isa.program import SnapProgram
from ..network.graph import SemanticNetwork
from .backends import PropagationBackend, make_backend
from .state import ExecutionError, MachineState, WorkReport


@dataclass
class ExecutionRecord:
    """What one instruction did: work counters and propagation stats."""

    instruction: Instruction
    work: WorkReport
    result: Any = None
    #: Number of simultaneously activated source nodes (α, §II-C).
    alpha: int = 0
    #: Longest path any marker traveled (hops).
    max_hops: int = 0
    #: Cross-cluster activation messages emitted.
    remote_messages: int = 0
    #: Total marker deliveries.
    arrivals: int = 0

    @property
    def category(self) -> str:
        """The instruction's profiling category."""
        return self.instruction.category

    @property
    def opcode(self) -> str:
        """The instruction's opcode string."""
        return self.instruction.opcode


@dataclass
class RunResult:
    """Outcome of running a whole program."""

    records: List[ExecutionRecord] = field(default_factory=list)

    @property
    def collects(self) -> List[ExecutionRecord]:
        """Records of retrieval instructions, in program order."""
        return [r for r in self.records if r.result is not None]

    def category_counts(self) -> Dict[str, int]:
        """Instruction counts per category."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.category] = counts.get(record.category, 0) + 1
        return counts

    def total_work(self) -> WorkReport:
        """Sum of all instructions' work counters."""
        total = WorkReport()
        for record in self.records:
            total.merge(record.work)
        return total


# Instruction class -> (dispatch kind, unbound MachineState primitive).
# Built once at import; execute() does a single dict probe per
# instruction instead of rebuilding these tables and isinstance-scanning
# them on every call (the old hot-path behavior).
_KIND_PROPAGATE = "propagate"
_KIND_GLOBAL = "global"
_KIND_CLUSTER = "cluster"
_KIND_COLLECT = "collect"

_DISPATCH: Dict[type, Tuple[str, Optional[Callable]]] = {
    Propagate: (_KIND_PROPAGATE, None),
    Create: (_KIND_GLOBAL, MachineState.create),
    Delete: (_KIND_GLOBAL, MachineState.delete),
    SetColor: (_KIND_GLOBAL, MachineState.set_color),
    SearchNode: (_KIND_CLUSTER, MachineState.search_node),
    SearchRelation: (_KIND_CLUSTER, MachineState.search_relation),
    SearchColor: (_KIND_CLUSTER, MachineState.search_color),
    AndMarker: (_KIND_CLUSTER, MachineState.and_marker),
    OrMarker: (_KIND_CLUSTER, MachineState.or_marker),
    NotMarker: (_KIND_CLUSTER, MachineState.not_marker),
    SetMarker: (_KIND_CLUSTER, MachineState.set_marker),
    ClearMarker: (_KIND_CLUSTER, MachineState.clear_marker),
    FuncMarker: (_KIND_CLUSTER, MachineState.func_marker),
    MarkerCreate: (_KIND_CLUSTER, MachineState.marker_create),
    MarkerDelete: (_KIND_CLUSTER, MachineState.marker_delete),
    MarkerSetColor: (_KIND_CLUSTER, MachineState.marker_set_color),
    CollectNode: (_KIND_COLLECT, MachineState.collect_node),
    CollectMarker: (_KIND_COLLECT, MachineState.collect_marker),
    CollectRelation: (_KIND_COLLECT, MachineState.collect_relation),
    CollectColor: (_KIND_COLLECT, MachineState.collect_color),
}


def _dispatch_entry(cls: type) -> Optional[Tuple[str, Optional[Callable]]]:
    """Dispatch entry for an instruction class, honoring subclasses."""
    entry = _DISPATCH.get(cls)
    if entry is None:
        for base in cls.__mro__[1:]:
            entry = _DISPATCH.get(base)
            if entry is not None:
                _DISPATCH[cls] = entry  # memoize the subclass
                break
    return entry


class FunctionalEngine:
    """Untimed executor of SNAP programs over a partitioned KB."""

    def __init__(
        self,
        network: SemanticNetwork,
        num_clusters: int = 1,
        partition_policy: str = "round-robin",
        state: Optional[MachineState] = None,
        backend: Union[None, str, PropagationBackend] = None,
    ) -> None:
        self.state = state or MachineState(
            network, num_clusters, partition_policy
        )
        self.backend = make_backend(backend)

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return self.state.num_clusters

    @property
    def backend_name(self) -> str:
        """Name of the active propagation backend."""
        return self.backend.name

    # ------------------------------------------------------------------
    def run(self, program: SnapProgram) -> RunResult:
        """Execute a program in order; return all execution records."""
        result = RunResult()
        for instruction in program:
            result.records.append(self.execute(instruction))
        return result

    def execute(self, instruction: Instruction) -> ExecutionRecord:
        """Execute one instruction with exact semantics."""
        entry = _dispatch_entry(type(instruction))
        if entry is None:
            raise ExecutionError(
                f"unsupported instruction: {instruction.opcode}"
            )
        kind, primitive = entry
        state = self.state

        if kind == _KIND_CLUSTER:
            work = WorkReport()
            for cid in range(state.num_clusters):
                work.merge(primitive(state, cid, instruction))
            return ExecutionRecord(instruction, work)

        if kind == _KIND_COLLECT:
            work = WorkReport()
            collected: List = []
            for cid in range(state.num_clusters):
                part, part_work = primitive(state, cid, instruction)
                collected.extend(part)
                work.merge(part_work)
            # Full-tuple sort: ties on the leading global id (e.g.
            # COLLECT-RELATION listing several links of one node) must
            # not depend on cluster visit order, or results would vary
            # across partition policies and backends.
            collected.sort()
            return ExecutionRecord(instruction, work, result=collected)

        if kind == _KIND_PROPAGATE:
            return self._propagate(instruction)

        return ExecutionRecord(instruction, primitive(state, instruction))

    # ------------------------------------------------------------------
    def _propagate(self, instruction: Propagate) -> ExecutionRecord:
        """Marker propagation, delegated to the active backend."""
        outcome = self.backend.propagate(self.state, instruction)
        return ExecutionRecord(
            instruction,
            outcome.work,
            alpha=outcome.alpha,
            max_hops=outcome.max_hops,
            remote_messages=outcome.remote_messages,
            arrivals=outcome.arrivals,
        )


def run_program(
    network: SemanticNetwork,
    program: SnapProgram,
    num_clusters: int = 1,
    partition_policy: str = "round-robin",
    backend: Union[None, str, PropagationBackend] = None,
) -> RunResult:
    """Convenience one-shot: build an engine and run a program."""
    engine = FunctionalEngine(
        network, num_clusters, partition_policy, backend=backend
    )
    return engine.run(program)
