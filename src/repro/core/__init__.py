"""Execution core: distributed tables, activation messages, semantics.

The core implements the paper's three knowledge-base tables (Fig. 4),
the 64-bit activation-message wire format (§III-B), and the instruction
semantics shared by the untimed functional engine and the timed
machine simulator.
"""

from .tables import (
    ClusterTables,
    EMPTY_SLOT,
    MACHINE_NODE_CAPACITY,
    MarkerStatusTable,
    NodeTable,
    RelationEntry,
    RelationTable,
    TableError,
    WORD_BITS,
    build_tables,
)
from .activation import (
    ActivationMessage,
    FIELD_WIDTHS,
    MESSAGE_BITS,
    MESSAGE_BYTES,
    MessageError,
    from_bfloat16_bits,
    from_bytes,
    to_bfloat16_bits,
    unpack,
)
from .state import (
    Arrival,
    ExecutionError,
    MachineState,
    PropagationContext,
    WorkReport,
)
from .backends import (
    BACKENDS,
    PropagationBackend,
    PropagationOutcome,
    PythonBackend,
    VectorizedBackend,
    get_default_backend,
    make_backend,
    set_default_backend,
)
from .engine import (
    ExecutionRecord,
    FunctionalEngine,
    RunResult,
    run_program,
)

__all__ = [
    "BACKENDS", "PropagationBackend", "PropagationOutcome",
    "PythonBackend", "VectorizedBackend", "get_default_backend",
    "make_backend", "set_default_backend",
    "ClusterTables", "EMPTY_SLOT", "MACHINE_NODE_CAPACITY",
    "MarkerStatusTable", "NodeTable", "RelationEntry", "RelationTable",
    "TableError", "WORD_BITS", "build_tables",
    "ActivationMessage", "FIELD_WIDTHS", "MESSAGE_BITS", "MESSAGE_BYTES",
    "MessageError", "from_bfloat16_bits", "from_bytes",
    "to_bfloat16_bits", "unpack",
    "Arrival", "ExecutionError", "MachineState", "PropagationContext",
    "WorkReport",
    "ExecutionRecord", "FunctionalEngine", "RunResult", "run_program",
]
