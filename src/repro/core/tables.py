"""The three knowledge-base tables of paper Fig. 4.

Each cluster stores its partition of the semantic network in:

* a **node table** — permanent properties (color, function) and the
  dynamic complex-marker registers (32-bit float value + 15-bit origin
  address) for each local node;
* a **marker status table** — one bit per (marker, node), packed into
  ``W = 32``-bit words so that *"when the table is updated, the status
  of markers from W nodes are processed simultaneously by each PE"*;
* a **relation table** — up to 16 outgoing relation slots per node,
  each holding (relation type, destination cluster, destination local
  id, 32-bit float weight).  Continuation slots installed by the
  fanout pre-processor are walked transparently.

All tables are numpy-backed; word-level operation counts (the unit of
MU work) are exposed for the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..isa.instructions import NUM_COMPLEX_MARKERS, NUM_MARKERS, is_complex
from ..network.builder import CONT_RELATION
from ..network.graph import SemanticNetwork
from ..network.node import MAX_FANOUT
from ..network.partition import Partitioning

#: CPU word length in bits (TMS320C30 is a 32-bit machine).
WORD_BITS = 32

#: Machine node capacity: "32K semantic network nodes were selected as
#: a compromise between knowledge base size and machine cost".
MACHINE_NODE_CAPACITY = 32 * 1024

#: Sentinel for an empty relation slot.
EMPTY_SLOT = -1


class TableError(ValueError):
    """Raised on capacity violations or bad table access."""


class MarkerStatusTable:
    """Bit-packed active/inactive state for all 128 markers.

    Rows are markers; each row has ``ceil(n / 32)`` status words.
    Word-level boolean operations are the primitive the MUs execute
    "for 32 nodes at a time".
    """

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.num_words = max(1, -(-num_nodes // WORD_BITS))
        self._bits = np.zeros((NUM_MARKERS, self.num_words), dtype=np.uint32)
        # Mask clearing padding bits beyond num_nodes in the last word.
        self._tail_mask = np.uint32(0xFFFFFFFF)
        tail = num_nodes % WORD_BITS
        if tail:
            self._tail_mask = np.uint32((1 << tail) - 1)

    # -- single-bit operations --------------------------------------------
    def set(self, marker: int, local: int) -> bool:
        """Set marker bit; returns True if it was previously clear."""
        word, bit = divmod(local, WORD_BITS)
        mask = np.uint32(1 << bit)
        was_clear = not (self._bits[marker, word] & mask)
        self._bits[marker, word] |= mask
        return was_clear

    def clear(self, marker: int, local: int) -> None:
        """Discard all stored records."""
        word, bit = divmod(local, WORD_BITS)
        self._bits[marker, word] &= np.uint32(~np.uint32(1 << bit))

    def test(self, marker: int, local: int) -> bool:
        """Whether the marker bit is set at a local node."""
        word, bit = divmod(local, WORD_BITS)
        return bool(self._bits[marker, word] >> np.uint32(bit) & 1)

    # -- row (whole-marker) operations ----------------------------------
    def row(self, marker: int) -> np.ndarray:
        """The raw status words of a marker (read-only view)."""
        view = self._bits[marker]
        view.flags.writeable = False
        return view

    def set_all(self, marker: int) -> None:
        """Set the marker at every node (word-wise)."""
        self._bits[marker, :] = np.uint32(0xFFFFFFFF)
        self._bits[marker, -1] = self._tail_mask

    def clear_all(self, marker: int) -> None:
        """Clear the marker at every node (word-wise)."""
        self._bits[marker, :] = 0

    def reset(self) -> None:
        """Clear every marker at every node (between serving queries)."""
        self._bits[:, :] = 0

    def and_rows(self, m1: int, m2: int, m3: int) -> int:
        """m3 := m1 & m2; returns words processed (timing unit)."""
        np.bitwise_and(self._bits[m1], self._bits[m2], out=self._bits[m3])
        return self.num_words

    def or_rows(self, m1: int, m2: int, m3: int) -> int:
        """m3 := m1 | m2; returns words processed."""
        np.bitwise_or(self._bits[m1], self._bits[m2], out=self._bits[m3])
        return self.num_words

    def not_row(self, m1: int, m2: int) -> int:
        """m2 := ~m1 (padding bits kept clear)."""
        np.bitwise_not(self._bits[m1], out=self._bits[m2])
        self._bits[m2, -1] &= self._tail_mask
        return self.num_words

    def copy_row(self, src: int, dst: int) -> int:
        """dst := src; returns words processed."""
        self._bits[dst, :] = self._bits[src, :]
        return self.num_words

    # -- queries -----------------------------------------------------------
    def count(self, marker: int) -> int:
        """Population count of a marker row."""
        return int(
            sum(bin(int(w)).count("1") for w in self._bits[marker])
        )

    def nodes_with(self, marker: int) -> List[int]:
        """Local ids of nodes where the marker is set, ascending."""
        out: List[int] = []
        row = self._bits[marker]
        for word_index in range(self.num_words):
            word = int(row[word_index])
            base = word_index * WORD_BITS
            while word:
                low = word & -word
                out.append(base + low.bit_length() - 1)
                word ^= low
        return out

    # -- bulk operations (vectorized propagation backend) ---------------
    def test_many(self, marker: int, locals_: np.ndarray) -> np.ndarray:
        """Bit test for an array of local ids; returns a bool array."""
        words = locals_ // WORD_BITS
        bits = locals_ % WORD_BITS
        return ((self._bits[marker][words] >> bits) & 1).astype(bool)

    def set_many(self, marker: int, locals_: np.ndarray) -> None:
        """Set the marker at every listed local id (duplicates fine)."""
        words = locals_ // WORD_BITS
        masks = (np.uint32(1) << (locals_ % WORD_BITS)).astype(np.uint32)
        np.bitwise_or.at(self._bits[marker], words, masks)

    def nodes_with_array(self, marker: int) -> np.ndarray:
        """Like :meth:`nodes_with`, as an ascending int64 array."""
        row = self._bits[marker].astype("<u4")
        flat = np.unpackbits(row.view(np.uint8), bitorder="little")
        return np.nonzero(flat[: self.num_nodes])[0].astype(np.int64)

    def nonzero_words(self, marker: int) -> int:
        """How many status words are nonzero (MU scan shortcut)."""
        return int(np.count_nonzero(self._bits[marker]))

    def any(self, marker: int) -> bool:
        """Whether the marker is set anywhere."""
        return bool(np.any(self._bits[marker]))

    def snapshot(self) -> np.ndarray:
        """Copy of the whole table (for equivalence testing)."""
        return self._bits.copy()

    def grow(self, count: int = 1) -> None:
        """Extend capacity for ``count`` more nodes (runtime CREATE)."""
        self.num_nodes += count
        new_words = max(1, -(-self.num_nodes // WORD_BITS))
        if new_words > self.num_words:
            pad = np.zeros((NUM_MARKERS, new_words - self.num_words),
                           dtype=np.uint32)
            self._bits = np.concatenate([self._bits, pad], axis=1)
            self.num_words = new_words
        tail = self.num_nodes % WORD_BITS
        self._tail_mask = (
            np.uint32((1 << tail) - 1) if tail else np.uint32(0xFFFFFFFF)
        )


class NodeTable:
    """Permanent node properties + complex-marker registers (Fig. 4)."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.color = np.zeros(num_nodes, dtype=np.uint8)
        self.function = np.zeros(num_nodes, dtype=np.uint8)
        #: 32-bit float value per (node, complex marker).
        self.value = np.zeros((num_nodes, NUM_COMPLEX_MARKERS), dtype=np.float32)
        #: 15-bit origin address (global node id) per (node, complex marker).
        self.origin = np.full((num_nodes, NUM_COMPLEX_MARKERS), -1, dtype=np.int32)

    def set_value(self, local: int, marker: int, value: float,
                  origin: int = -1) -> None:
        """Store a complex marker's value/origin (no-op for binary)."""
        if is_complex(marker):
            self.value[local, marker] = value
            self.origin[local, marker] = origin

    def get_value(self, local: int, marker: int) -> float:
        """Complex-marker value at a local node (0.0 for binary)."""
        if is_complex(marker):
            return float(self.value[local, marker])
        return 0.0

    def get_origin(self, local: int, marker: int) -> int:
        """Complex-marker origin at a local node (-1 for binary)."""
        if is_complex(marker):
            return int(self.origin[local, marker])
        return -1

    def clear_value(self, local: int, marker: int) -> None:
        """Reset a complex marker's value/origin at a node."""
        if is_complex(marker):
            self.value[local, marker] = 0.0
            self.origin[local, marker] = -1

    def reset_registers(self) -> None:
        """Reset every complex-marker value/origin register."""
        self.value[:, :] = 0.0
        self.origin[:, :] = -1

    def grow(self, count: int = 1) -> None:
        """Extend capacity for ``count`` more nodes (runtime CREATE)."""
        self.num_nodes += count
        self.color = np.concatenate(
            [self.color, np.zeros(count, dtype=np.uint8)]
        )
        self.function = np.concatenate(
            [self.function, np.zeros(count, dtype=np.uint8)]
        )
        self.value = np.concatenate(
            [self.value,
             np.zeros((count, NUM_COMPLEX_MARKERS), dtype=np.float32)]
        )
        self.origin = np.concatenate(
            [self.origin,
             np.full((count, NUM_COMPLEX_MARKERS), -1, dtype=np.int32)]
        )


@dataclass(frozen=True)
class RelationEntry:
    """One decoded relation-table slot."""

    relation: int
    dest_cluster: int
    dest_local: int
    dest_global: int
    weight: float


class RelationTable:
    """Fixed 16-slot outgoing-relation storage per node.

    Slots hold (relation type, destination cluster, destination local
    id, weight).  The destination's global id is kept alongside for
    convenience (it is derivable from cluster+local via the
    partitioning, exactly as on the hardware).

    Runtime MARKER-CREATE bindings may exceed the 16 static slots; they
    spill into a dynamic overflow area (the hardware allocated result
    nodes from a reserved pool — see DESIGN.md).
    """

    def __init__(self, num_nodes: int, cont_relation_id: Optional[int]) -> None:
        self.num_nodes = num_nodes
        self.cont_relation_id = cont_relation_id
        shape = (num_nodes, MAX_FANOUT)
        self.relation = np.full(shape, EMPTY_SLOT, dtype=np.int32)
        self.dest_cluster = np.zeros(shape, dtype=np.int32)
        self.dest_local = np.zeros(shape, dtype=np.int32)
        self.dest_global = np.zeros(shape, dtype=np.int32)
        self.weight = np.zeros(shape, dtype=np.float32)
        self._fill = np.zeros(num_nodes, dtype=np.int32)
        self._overflow: Dict[int, List[RelationEntry]] = {}

    def grow(self, count: int = 1) -> None:
        """Extend capacity for ``count`` more nodes (runtime CREATE)."""
        self.num_nodes += count
        shape = (count, MAX_FANOUT)
        self.relation = np.concatenate(
            [self.relation, np.full(shape, EMPTY_SLOT, dtype=np.int32)]
        )
        self.dest_cluster = np.concatenate(
            [self.dest_cluster, np.zeros(shape, dtype=np.int32)]
        )
        self.dest_local = np.concatenate(
            [self.dest_local, np.zeros(shape, dtype=np.int32)]
        )
        self.dest_global = np.concatenate(
            [self.dest_global, np.zeros(shape, dtype=np.int32)]
        )
        self.weight = np.concatenate(
            [self.weight, np.zeros(shape, dtype=np.float32)]
        )
        self._fill = np.concatenate(
            [self._fill, np.zeros(count, dtype=np.int32)]
        )

    def add(self, local: int, entry: RelationEntry) -> None:
        """Install a link in the next free slot (or overflow)."""
        slot = int(self._fill[local])
        if slot >= MAX_FANOUT:
            self._overflow.setdefault(local, []).append(entry)
            return
        self.relation[local, slot] = entry.relation
        self.dest_cluster[local, slot] = entry.dest_cluster
        self.dest_local[local, slot] = entry.dest_local
        self.dest_global[local, slot] = entry.dest_global
        self.weight[local, slot] = entry.weight
        self._fill[local] = slot + 1

    def remove(self, local: int, relation: int, dest_global: int) -> bool:
        """Remove the first matching slot; compact remaining slots."""
        fill = int(self._fill[local])
        for slot in range(fill):
            if (
                self.relation[local, slot] == relation
                and self.dest_global[local, slot] == dest_global
            ):
                # Shift remaining slots down.
                for s in range(slot, fill - 1):
                    self.relation[local, s] = self.relation[local, s + 1]
                    self.dest_cluster[local, s] = self.dest_cluster[local, s + 1]
                    self.dest_local[local, s] = self.dest_local[local, s + 1]
                    self.dest_global[local, s] = self.dest_global[local, s + 1]
                    self.weight[local, s] = self.weight[local, s + 1]
                self.relation[local, fill - 1] = EMPTY_SLOT
                self._fill[local] = fill - 1
                return True
        overflow = self._overflow.get(local, [])
        for i, entry in enumerate(overflow):
            if entry.relation == relation and entry.dest_global == dest_global:
                del overflow[i]
                return True
        return False

    def slots_used(self, local: int) -> int:
        """Relation slots occupied (static + overflow)."""
        return int(self._fill[local]) + len(self._overflow.get(local, ()))

    @property
    def has_overflow(self) -> bool:
        """Whether any node spilled past the 16 static slots."""
        return bool(self._overflow)

    def fill_counts(self) -> np.ndarray:
        """Occupied static-slot count per node (read-only view)."""
        view = self._fill[: self.num_nodes]
        return view

    def entries(self, local: int) -> List[RelationEntry]:
        """Direct slots of one node (no continuation walking)."""
        out = []
        for slot in range(int(self._fill[local])):
            out.append(
                RelationEntry(
                    int(self.relation[local, slot]),
                    int(self.dest_cluster[local, slot]),
                    int(self.dest_local[local, slot]),
                    int(self.dest_global[local, slot]),
                    float(self.weight[local, slot]),
                )
            )
        out.extend(self._overflow.get(local, ()))
        return out

    def links_of(self, local: int) -> Tuple[List[RelationEntry], int]:
        """Logical links of a node, walking continuation chains locally.

        Returns (entries, slots_scanned); scanned slot count feeds the
        MU timing model.  Continuation subnodes always live on the same
        cluster as their parent, so the walk never leaves the table.
        """
        entries: List[RelationEntry] = []
        scanned = 0
        current = local
        seen = set()
        while True:
            if current in seen:
                raise TableError(f"continuation cycle at local node {current}")
            seen.add(current)
            nxt = None
            for entry in self.entries(current):
                scanned += 1
                if (
                    self.cont_relation_id is not None
                    and entry.relation == self.cont_relation_id
                ):
                    nxt = entry.dest_local
                else:
                    entries.append(entry)
            if nxt is None:
                return entries, scanned
            current = nxt


@dataclass
class ClusterTables:
    """All three tables for one cluster, plus id mappings."""

    cluster_id: int
    node_table: NodeTable
    status: MarkerStatusTable
    relations: RelationTable
    #: local id -> global node id.
    to_global: List[int]
    #: global node id -> local id (only for nodes on this cluster).
    to_local: Dict[int, int]

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.node_table.num_nodes

    def is_local(self, global_id: int) -> bool:
        """Whether a global node id lives on this cluster."""
        return global_id in self.to_local

    def add_node(self, global_id: int, color: int, function: int = 0) -> int:
        """Install a new node at runtime; returns its local id."""
        local = self.num_nodes
        self.node_table.grow(1)
        self.status.grow(1)
        self.relations.grow(1)
        self.node_table.color[local] = color
        self.node_table.function[local] = function
        self.to_global.append(global_id)
        self.to_local[global_id] = local
        return local


def build_tables(
    network: SemanticNetwork,
    partitioning: Partitioning,
    capacity: int = MACHINE_NODE_CAPACITY,
) -> List[ClusterTables]:
    """Distribute a (physical) network into per-cluster tables.

    The network must already satisfy the 16-slot fanout limit (run
    :func:`repro.network.builder.preprocess_fanout` first); subnodes
    are re-homed to their parent's cluster so continuation chains stay
    cluster-local.
    """
    if network.num_nodes > capacity:
        raise TableError(
            f"network has {network.num_nodes} nodes; machine capacity is "
            f"{capacity}"
        )
    cont_id = network.relations.get(CONT_RELATION)

    # Re-home subnodes with their parents (continuation chains must be
    # cluster-local).
    cluster_of: List[int] = [
        partitioning.cluster_of(n.node_id) for n in network.nodes()
    ]
    for node in network.nodes():
        if node.parent_id is not None:
            cluster_of[node.node_id] = cluster_of[node.parent_id]

    members: List[List[int]] = [[] for _ in range(partitioning.num_clusters)]
    for nid, cluster in enumerate(cluster_of):
        members[cluster].append(nid)

    # Build per-cluster id maps.
    tables: List[ClusterTables] = []
    to_local_all: Dict[int, Tuple[int, int]] = {}
    for cid, nodes in enumerate(members):
        to_local = {gid: i for i, gid in enumerate(nodes)}
        for gid, lid in to_local.items():
            to_local_all[gid] = (cid, lid)
        tables.append(
            ClusterTables(
                cluster_id=cid,
                node_table=NodeTable(len(nodes)),
                status=MarkerStatusTable(len(nodes)),
                relations=RelationTable(len(nodes), cont_id),
                to_global=list(nodes),
                to_local=to_local,
            )
        )

    # Populate node properties.
    for node in network.nodes():
        cid, lid = to_local_all[node.node_id]
        tables[cid].node_table.color[lid] = node.color
        tables[cid].node_table.function[lid] = node.function

    # Populate relation slots.
    for link in network.links():
        src_c, src_l = to_local_all[link.source]
        dst_c, dst_l = to_local_all[link.dest]
        tables[src_c].relations.add(
            src_l,
            RelationEntry(link.relation, dst_c, dst_l, link.dest, link.weight),
        )
    return tables
