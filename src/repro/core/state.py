"""Shared machine state and instruction semantics.

:class:`MachineState` holds the distributed knowledge-base tables and
implements the *semantics* of every SNAP instruction as **per-cluster
primitives** that report the work they performed.  Two executors drive
it:

* the :class:`~repro.core.engine.FunctionalEngine` — untimed, global
  worklist; used by the serial baseline and as the golden model;
* the timed :class:`~repro.machine.machine.SnapMachine` — schedules the
  same primitives through a discrete-event simulation of the PU/MU/CU
  pipeline, interconnect, and tiered synchronization.

Because both executors run the *same* primitive code, final marker
state is identical regardless of cluster count or event ordering — a
property the test suite checks explicitly.

Propagation value semantics: when a complex marker reaches a node more
than once, the *minimum* value is kept, and the node is re-expanded
only when a strictly smaller value arrives.  This makes the final
values a deterministic fixpoint (minimum path cost under the hop
function), matching the "cost of accepting a particular concept
sequence" reading of marker values, independent of message ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..isa.functions import FunctionRegistry, condition
from ..isa.instructions import (
    AndMarker,
    ClearMarker,
    CollectColor,
    CollectMarker,
    CollectNode,
    CollectRelation,
    Create,
    Delete,
    FuncMarker,
    Instruction,
    MarkerCreate,
    MarkerDelete,
    MarkerSetColor,
    NotMarker,
    OrMarker,
    Propagate,
    SearchColor,
    SearchNode,
    SearchRelation,
    SetColor,
    SetMarker,
    is_complex,
)
from ..isa.rules import PropagationRule
from ..network.builder import preprocess_fanout
from ..network.graph import SemanticNetwork
from ..network.node import Color
from ..network.partition import Partitioning, make_partition
from .activation import ActivationMessage
from .tables import (
    MACHINE_NODE_CAPACITY,
    ClusterTables,
    RelationEntry,
    build_tables,
)


class ExecutionError(RuntimeError):
    """Raised when an instruction cannot be executed."""


@dataclass
class WorkReport:
    """Counters of machine work performed by a primitive.

    The timing model converts these into simulated time; the
    functional engine aggregates them for instruction profiles.
    """

    words: int = 0       # marker-status words read/written
    nodes: int = 0       # per-node visits (table row touches)
    slots: int = 0       # relation-table slots scanned
    sets: int = 0        # marker bits written
    fp_ops: int = 0      # floating-point value updates
    messages: int = 0    # cross-cluster activation messages emitted
    links_made: int = 0  # relation slots written (bindings)

    def merge(self, other: "WorkReport") -> "WorkReport":
        """Merge another instance into this one; returns self."""
        self.words += other.words
        self.nodes += other.nodes
        self.slots += other.slots
        self.sets += other.sets
        self.fp_ops += other.fp_ops
        self.messages += other.messages
        self.links_made += other.links_made
        return self

    def total(self) -> int:
        """Aggregate micro-operation count."""
        return (
            self.words + self.nodes + self.slots + self.sets
            + self.fp_ops + self.messages + self.links_made
        )


@dataclass
class Arrival:
    """A marker delivery pending at a cluster (local or remote origin)."""

    cluster: int
    local: int
    state: int
    value: float
    origin: int
    level: int
    hops: int
    remote: bool = False


#: Compiled rule: state -> ((relation id, next state), ...).
CompiledRule = Dict[int, Tuple[Tuple[int, int], ...]]

#: Per-(node, rule-state) expansion budget — the safety valve against
#: pathological negative-cost cycles.  Shared by every propagation
#: backend so cap semantics cannot drift between them.
MAX_EXPANSIONS = 64


@dataclass
class PropagationContext:
    """Per-PROPAGATE bookkeeping shared by all clusters."""

    instr: Propagate
    rule: PropagationRule
    compiled: CompiledRule
    hop_name: str
    level: int = 0
    #: (cluster, local, state) -> best value already expanded from.
    expanded: Dict[Tuple[int, int, int], float] = field(default_factory=dict)
    expansions: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    #: Safety valve for pathological negative-cost cycles.
    max_expansions: int = MAX_EXPANSIONS
    # statistics
    total_arrivals: int = 0
    remote_messages: int = 0
    max_hops: int = 0
    alpha: int = 0  # number of seed (source-activated) nodes


class MachineState:
    """Distributed knowledge base + SNAP instruction semantics."""

    def __init__(
        self,
        network: SemanticNetwork,
        num_clusters: int = 32,
        partition_policy: str = "round-robin",
        partitioning: Optional[Partitioning] = None,
        functions: Optional[FunctionRegistry] = None,
        node_capacity_per_cluster: Optional[int] = None,
        excluded_clusters: Optional[Iterable[int]] = None,
        machine_capacity: Optional[int] = None,
    ) -> None:
        """``node_capacity_per_cluster``: pass 1024 to enforce the
        prototype's physical cluster memory limit; ``None`` (default)
        places no bound, which baselines and sweep configurations
        rely on (a 1-cluster reference run holds the whole KB).

        ``excluded_clusters``: failed clusters that must host no nodes
        (fault injection); the partition is remapped so their region
        of the network is evicted onto survivors, and runtime node
        creation never places nodes there.

        ``machine_capacity``: total node budget across all clusters;
        defaults to the prototype's 32K.  Benchmarks and scale studies
        pass a larger figure to model a bigger build of the machine."""
        self.network = preprocess_fanout(network)
        self.num_clusters = num_clusters
        self.functions = functions or FunctionRegistry()
        self.excluded_clusters = frozenset(excluded_clusters or ())
        #: Nodes evicted off excluded clusters (graceful degradation).
        self.nodes_remapped = 0
        if partitioning is None:
            capacity = (
                node_capacity_per_cluster
                if node_capacity_per_cluster is not None
                else max(1, self.network.num_nodes)
            )
            partitioning = make_partition(
                self.network, num_clusters, partition_policy, capacity
            )
        if self.excluded_clusters:
            from ..network.partition import evict_clusters

            partitioning, self.nodes_remapped = evict_clusters(
                partitioning, self.excluded_clusters
            )
        self.partitioning = partitioning
        self.clusters: List[ClusterTables] = build_tables(
            self.network,
            partitioning,
            capacity=(
                machine_capacity
                if machine_capacity is not None
                else MACHINE_NODE_CAPACITY
            ),
        )
        #: Bumped whenever the link topology or node population
        #: changes; backends key derived adjacency structures on it.
        self.mutation_version = 0
        #: global node id -> (cluster, local id); maintained through
        #: runtime node creation.
        self.addr: Dict[int, Tuple[int, int]] = {}
        for tables in self.clusters:
            for gid, lid in tables.to_local.items():
                self.addr[gid] = (tables.cluster_id, lid)
        #: Reclaimed node slots awaiting reuse (controller GC, §III-C).
        self._free_nodes: List[int] = []

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def resolve(self, ref) -> int:
        """Resolve a node operand to a global id."""
        return self.network.resolve(ref)

    def address(self, ref) -> Tuple[int, int]:
        """(cluster, local) address of a node operand.

        Raises :class:`ExecutionError` for nodes the machine does not
        host — typically a symptom of mutating the network object
        directly instead of through CREATE/MARKER-CREATE instructions.
        """
        gid = self.resolve(ref)
        try:
            return self.addr[gid]
        except KeyError:
            raise ExecutionError(
                f"node {self.network.node(gid).name!r} (id {gid}) is not "
                f"loaded into the machine tables; create nodes through "
                f"CREATE/MARKER-CREATE instructions, not by mutating the "
                f"network directly"
            ) from None

    def node_name(self, gid: int) -> str:
        """Name of a node by global id."""
        return self.network.node(gid).name

    def compile_rule(self, rule: PropagationRule) -> CompiledRule:
        """Translate a rule's relation names into relation ids.

        Relations absent from the knowledge base compile to no
        transitions (a marker simply cannot move along them).
        """
        compiled: CompiledRule = {}
        for state in rule.table:
            moves = []
            for rel_name, nxt in rule.moves(state):
                rid = self.network.relations.get(rel_name)
                if rid is not None:
                    moves.append((rid, nxt))
            compiled[state] = tuple(moves)
        return compiled

    def _least_loaded_cluster(self) -> int:
        sizes = [t.num_nodes for t in self.clusters]
        if self.excluded_clusters:
            eligible = [
                c for c in range(len(sizes))
                if c not in self.excluded_clusters
            ]
            best = min(eligible, key=lambda c: sizes[c])
            return best
        return sizes.index(min(sizes))

    def _create_node(self, name: str, color: int) -> int:
        """Create a node at runtime, reusing a reclaimed slot if any."""
        if self._free_nodes:
            gid = self._free_nodes.pop()
            self.network.rename_node(gid, name)
            self.network.set_color(gid, color)
            cid, lid = self.addr[gid]
            self.clusters[cid].node_table.color[lid] = color
            return gid
        node = self.network.add_node(name, color)
        cid = self._least_loaded_cluster()
        lid = self.clusters[cid].add_node(node.node_id, color)
        self.addr[node.node_id] = (cid, lid)
        self.mutation_version += 1
        return node.node_id

    def garbage_collect(self) -> int:
        """Reclaim orphaned result nodes (§III-C housekeeping).

        The controller performs *"node management and garbage
        collection"* when the pipeline is empty.  A runtime-created
        result node whose bindings have all been MARKER-DELETEd is
        unreachable; its markers are wiped and its physical slot is
        queued for reuse by the next CREATE/MARKER-CREATE.
        """
        from ..isa.instructions import NUM_MARKERS

        freed = 0
        free_set = set(self._free_nodes)
        for node in list(self.network.nodes()):
            gid = node.node_id
            if (
                node.color != Color.RESULT
                or gid in free_set
                or self.network.fanout(gid) > 0
                or self.network.in_degree(gid) > 0
            ):
                continue
            cid, lid = self.addr[gid]
            tables = self.clusters[cid]
            for marker in range(NUM_MARKERS):
                tables.status.clear(marker, lid)
                tables.node_table.clear_value(lid, marker)
            self.network.rename_node(gid, f"__free__:{gid}")
            self._free_nodes.append(gid)
            freed += 1
        return freed

    @property
    def free_node_slots(self) -> int:
        """Reclaimed slots currently awaiting reuse."""
        return len(self._free_nodes)

    def reset_markers(self) -> None:
        """Clear all marker state machine-wide (status bits + complex
        value/origin registers) without touching the knowledge base.

        This is the host's between-queries wipe: serving treats each
        query as independent, so the array is handed over clean.  Nodes
        created at runtime and runtime link bindings are *not* undone —
        those are knowledge-base maintenance, owned by the controller's
        housekeeping (:meth:`garbage_collect`), not per-query state.
        """
        for tables in self.clusters:
            tables.status.reset()
            tables.node_table.reset_registers()

    def ensure_node(self, ref, color: int = Color.RESULT) -> int:
        """Resolve a node operand, creating it (by name) if missing."""
        if isinstance(ref, str) and ref not in self.network:
            return self._create_node(ref, color)
        return self.resolve(ref)

    def add_link_runtime(
        self, source_gid: int, relation: str, dest_gid: int, weight: float
    ) -> WorkReport:
        """Install a link in both the logical network and the tables."""
        link = self.network.add_link(source_gid, relation, dest_gid, weight)
        src_c, src_l = self.addr[source_gid]
        dst_c, dst_l = self.addr[dest_gid]
        self.clusters[src_c].relations.add(
            src_l,
            RelationEntry(link.relation, dst_c, dst_l, dest_gid, weight),
        )
        self.mutation_version += 1
        return WorkReport(links_made=1)

    def remove_link_runtime(
        self, source_gid: int, relation: str, dest_gid: int
    ) -> WorkReport:
        """Remove a link from the network and tables (if present)."""
        removed = self.network.remove_link(source_gid, relation, dest_gid)
        rid = self.network.relations.get(relation)
        if removed and rid is not None:
            src_c, src_l = self.addr[source_gid]
            self.clusters[src_c].relations.remove(src_l, rid, dest_gid)
        if removed:
            self.mutation_version += 1
        return WorkReport(slots=1, links_made=1 if removed else 0)

    # ------------------------------------------------------------------
    # Node maintenance (controller-initiated, global)
    # ------------------------------------------------------------------
    def create(self, instr: Create) -> WorkReport:
        """CREATE: load one link, creating endpoints as needed."""
        src = self.ensure_node(instr.source, Color.GENERIC)
        dst = self.ensure_node(instr.end, Color.GENERIC)
        return self.add_link_runtime(src, instr.relation, dst, instr.weight)

    def delete(self, instr: Delete) -> WorkReport:
        """DELETE: remove one knowledge-base link."""
        src = self.resolve(instr.source)
        dst = self.resolve(instr.end)
        return self.remove_link_runtime(src, instr.relation, dst)

    def set_color(self, instr: SetColor) -> WorkReport:
        """SET-COLOR: retag a node's color in network and tables."""
        gid = self.resolve(instr.node)
        self.network.set_color(gid, instr.color)
        cid, lid = self.addr[gid]
        self.clusters[cid].node_table.color[lid] = instr.color
        return WorkReport(nodes=1)

    # ------------------------------------------------------------------
    # Search (configuration phase)
    # ------------------------------------------------------------------
    def search_node(self, cid: int, instr: SearchNode) -> WorkReport:
        """Set a marker at a named node if it lives on this cluster."""
        gid = self.resolve(instr.node)
        home, lid = self.address(gid)
        if home != cid:
            return WorkReport(nodes=1)  # each PE checks its name table
        tables = self.clusters[cid]
        tables.status.set(instr.marker, lid)
        tables.node_table.set_value(lid, instr.marker, instr.value, gid)
        return WorkReport(nodes=1, sets=1, fp_ops=1)

    def search_relation(self, cid: int, instr: SearchRelation) -> WorkReport:
        """Mark every local node with an outgoing link of the relation."""
        tables = self.clusters[cid]
        rid = self.network.relations.get(instr.relation)
        work = WorkReport()
        if rid is None:
            return work
        for lid in range(tables.num_nodes):
            entries, scanned = tables.relations.links_of(lid)
            work.slots += scanned
            if any(e.relation == rid for e in entries):
                tables.status.set(instr.marker, lid)
                gid = tables.to_global[lid]
                tables.node_table.set_value(lid, instr.marker, instr.value, gid)
                work.sets += 1
                work.fp_ops += 1
        work.nodes += tables.num_nodes
        return work

    def search_color(self, cid: int, instr: SearchColor) -> WorkReport:
        """Mark every local node of the given color."""
        tables = self.clusters[cid]
        work = WorkReport(nodes=tables.num_nodes)
        for lid in range(tables.num_nodes):
            if tables.node_table.color[lid] == instr.color:
                tables.status.set(instr.marker, lid)
                gid = tables.to_global[lid]
                tables.node_table.set_value(lid, instr.marker, instr.value, gid)
                work.sets += 1
                work.fp_ops += 1
        return work

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def make_context(self, instr: Propagate, level: int = 0) -> PropagationContext:
        """Prepare the shared bookkeeping for one PROPAGATE."""
        hop = self.functions.hop(instr.function)
        return PropagationContext(
            instr=instr,
            rule=instr.rule,
            compiled=self.compile_rule(instr.rule),
            hop_name=hop.name,
            level=level,
        )

    def seeds(
        self, ctx: PropagationContext, cid: int
    ) -> Tuple[List[Arrival], WorkReport]:
        """Scan a cluster's status table for source-marker nodes.

        Returns pseudo-arrivals at the origin nodes themselves (state =
        rule initial, marker2 not set at origins) that the executor
        expands.
        """
        tables = self.clusters[cid]
        instr = ctx.instr
        work = WorkReport(words=tables.status.num_words)
        out: List[Arrival] = []
        for lid in tables.status.nodes_with(instr.marker1):
            gid = tables.to_global[lid]
            value = tables.node_table.get_value(lid, instr.marker1)
            out.append(
                Arrival(
                    cluster=cid,
                    local=lid,
                    state=ctx.rule.initial_state,
                    value=value,
                    origin=gid,
                    level=ctx.level,
                    hops=0,
                )
            )
            work.nodes += 1
        ctx.alpha += len(out)
        return out, work

    def expand(
        self, ctx: PropagationContext, arrival: Arrival
    ) -> Tuple[List[Arrival], List[ActivationMessage], WorkReport]:
        """Expand propagation from a node: scan links, emit deliveries.

        Local destinations come back as :class:`Arrival`; destinations
        on other clusters come back as :class:`ActivationMessage` for
        the CU/ICN to transport.
        """
        work = WorkReport()
        key = (arrival.cluster, arrival.local, arrival.state)
        count = ctx.expansions.get(key, 0)
        if count >= ctx.max_expansions:
            return [], [], work
        ctx.expansions[key] = count + 1
        ctx.expanded[key] = arrival.value

        moves = ctx.compiled.get(arrival.state, ())
        if not moves:
            return [], [], work

        hop = self.functions.hop(ctx.instr.function)
        tables = self.clusters[arrival.cluster]
        entries, scanned = tables.relations.links_of(arrival.local)
        work.slots += scanned

        local_out: List[Arrival] = []
        remote_out: List[ActivationMessage] = []
        for entry in entries:
            for rid, next_state in moves:
                if entry.relation != rid:
                    continue
                new_value = hop.apply(arrival.value, entry.weight)
                work.fp_ops += 1
                if not hop.alive(new_value):
                    continue
                if entry.dest_cluster == arrival.cluster:
                    local_out.append(
                        Arrival(
                            cluster=entry.dest_cluster,
                            local=entry.dest_local,
                            state=next_state,
                            value=new_value,
                            origin=arrival.origin,
                            level=arrival.level,
                            hops=arrival.hops + 1,
                        )
                    )
                else:
                    work.messages += 1
                    ctx.remote_messages += 1
                    remote_out.append(
                        ActivationMessage(
                            marker=ctx.instr.marker2,
                            value=new_value,
                            function=0,
                            rule=ctx.rule,
                            state=next_state,
                            dest_cluster=entry.dest_cluster,
                            dest_local=entry.dest_local,
                            origin=arrival.origin,
                            level=arrival.level,
                            hops=arrival.hops + 1,
                        )
                    )
        return local_out, remote_out, work

    def deliver(
        self, ctx: PropagationContext, arrival: Arrival
    ) -> Tuple[bool, WorkReport]:
        """Set marker-2 at the destination; decide whether to re-expand.

        Returns (should_expand, work).  Expansion happens on first
        arrival at a (node, rule-state), or when a strictly smaller
        complex-marker value arrives (min-cost fixpoint semantics).
        """
        instr = ctx.instr
        tables = self.clusters[arrival.cluster]
        work = WorkReport(nodes=1)
        ctx.total_arrivals += 1
        ctx.max_hops = max(ctx.max_hops, arrival.hops)

        was_clear = tables.status.set(instr.marker2, arrival.local)
        work.sets += 1
        if is_complex(instr.marker2):
            current = tables.node_table.get_value(arrival.local, instr.marker2)
            if was_clear or arrival.value < current:
                tables.node_table.set_value(
                    arrival.local, instr.marker2, arrival.value, arrival.origin
                )
                work.fp_ops += 1

        key = (arrival.cluster, arrival.local, arrival.state)
        if key not in ctx.expanded:
            return True, work
        if is_complex(instr.marker2) and arrival.value < ctx.expanded[key]:
            return True, work
        return False, work

    def message_to_arrival(self, msg: ActivationMessage) -> Arrival:
        """Convert a transported activation message back to a delivery."""
        return Arrival(
            cluster=msg.dest_cluster,
            local=msg.dest_local,
            state=msg.state,
            value=msg.value,
            origin=msg.origin,
            level=msg.level,
            hops=msg.hops,
            remote=True,
        )

    # ------------------------------------------------------------------
    # Boolean operations (word-wise over the status table)
    # ------------------------------------------------------------------
    def and_marker(self, cid: int, instr: AndMarker) -> WorkReport:
        """AND-MARKER over this cluster's status table."""
        tables = self.clusters[cid]
        snapshot = self._source_sets(cid, instr)
        words = tables.status.and_rows(instr.marker1, instr.marker2,
                                       instr.marker3)
        return self._combine_values(cid, instr, snapshot).merge(
            WorkReport(words=words)
        )

    def or_marker(self, cid: int, instr: OrMarker) -> WorkReport:
        """OR-MARKER over this cluster's status table."""
        tables = self.clusters[cid]
        snapshot = self._source_sets(cid, instr)
        words = tables.status.or_rows(instr.marker1, instr.marker2,
                                      instr.marker3)
        return self._combine_values(cid, instr, snapshot).merge(
            WorkReport(words=words)
        )

    def _source_sets(self, cid: int, instr) -> Tuple[set, set]:
        """Set-status of both source markers *before* marker-3 is
        written (marker-3 may alias a source)."""
        if not is_complex(instr.marker3):
            return set(), set()
        tables = self.clusters[cid]
        return (
            set(tables.status.nodes_with(instr.marker1)),
            set(tables.status.nodes_with(instr.marker2)),
        )

    def _combine_values(
        self,
        cid: int,
        instr: Union[AndMarker, OrMarker],
        snapshot: Tuple[set, set],
    ) -> WorkReport:
        """Merge source values into marker-3 where it is now set.

        For AND-MARKER both sources are set wherever marker-3 is, so
        the combine function always applies.  For OR-MARKER a node may
        carry only one of the sources; the combine function applies
        only where both were set, otherwise the present source's value
        is taken unchanged (an unset marker has no value to merge).
        """
        work = WorkReport()
        if not is_complex(instr.marker3):
            return work
        tables = self.clusters[cid]
        combine = self.functions.combine(instr.function)
        is_or = isinstance(instr, OrMarker)
        m1_set, m2_set = snapshot
        for lid in tables.status.nodes_with(instr.marker3):
            v1 = tables.node_table.get_value(lid, instr.marker1)
            v2 = tables.node_table.get_value(lid, instr.marker2)
            origin = tables.node_table.get_origin(lid, instr.marker1)
            if origin < 0:
                origin = tables.node_table.get_origin(lid, instr.marker2)
            if is_or and lid not in m1_set:
                value = v2
            elif is_or and lid not in m2_set:
                value = v1
            else:
                value = combine.combine(v1, v2)
            tables.node_table.set_value(lid, instr.marker3, value, origin)
            work.fp_ops += 1
        return work

    def not_marker(self, cid: int, instr: NotMarker) -> WorkReport:
        """m2 := nodes where m1 is clear or fails the condition."""
        tables = self.clusters[cid]
        work = WorkReport()
        work.words += tables.status.not_row(instr.marker1, instr.marker2)
        if instr.condition != "always":
            cond = condition(instr.condition)
            for lid in tables.status.nodes_with(instr.marker1):
                v1 = tables.node_table.get_value(lid, instr.marker1)
                work.fp_ops += 1
                if not cond(v1, instr.value):
                    tables.status.set(instr.marker2, lid)
                    work.sets += 1
        return work

    # ------------------------------------------------------------------
    # Set/clear
    # ------------------------------------------------------------------
    def set_marker(self, cid: int, instr: SetMarker) -> WorkReport:
        """SET-MARKER: set at every local node."""
        tables = self.clusters[cid]
        tables.status.set_all(instr.marker)
        work = WorkReport(words=tables.status.num_words)
        if is_complex(instr.marker):
            tables.node_table.value[:, instr.marker] = instr.value
            tables.node_table.origin[:, instr.marker] = -1
            work.fp_ops += tables.num_nodes
        return work

    def clear_marker(self, cid: int, instr: ClearMarker) -> WorkReport:
        """CLEAR-MARKER: clear at every local node."""
        tables = self.clusters[cid]
        tables.status.clear_all(instr.marker)
        work = WorkReport(words=tables.status.num_words)
        if is_complex(instr.marker):
            tables.node_table.value[:, instr.marker] = 0.0
            tables.node_table.origin[:, instr.marker] = -1
        return work

    def func_marker(self, cid: int, instr: FuncMarker) -> WorkReport:
        """FUNC-MARKER: rewrite values where set."""
        tables = self.clusters[cid]
        work = WorkReport(words=tables.status.num_words)
        if not is_complex(instr.marker):
            return work
        unary = self.functions.unary(instr.function)
        for lid in tables.status.nodes_with(instr.marker):
            value = tables.node_table.get_value(lid, instr.marker)
            origin = tables.node_table.get_origin(lid, instr.marker)
            tables.node_table.set_value(lid, instr.marker,
                                        unary.apply(value), origin)
            work.fp_ops += 1
        return work

    # ------------------------------------------------------------------
    # Marker node maintenance (binding)
    # ------------------------------------------------------------------
    def marker_create(self, cid: int, instr: MarkerCreate) -> WorkReport:
        """Bind each locally marked node to the end node."""
        end_gid = self.ensure_node(instr.end)
        tables = self.clusters[cid]
        work = WorkReport(words=tables.status.num_words)
        for lid in tables.status.nodes_with(instr.marker):
            gid = tables.to_global[lid]
            work.merge(self.add_link_runtime(gid, instr.forward, end_gid, 0.0))
            if instr.reverse:
                work.merge(
                    self.add_link_runtime(end_gid, instr.reverse, gid, 0.0)
                )
            work.nodes += 1
        return work

    def marker_delete(self, cid: int, instr: MarkerDelete) -> WorkReport:
        """Unbind each locally marked node from the end node."""
        end_gid = self.resolve(instr.end)
        tables = self.clusters[cid]
        work = WorkReport(words=tables.status.num_words)
        for lid in tables.status.nodes_with(instr.marker):
            gid = tables.to_global[lid]
            work.merge(self.remove_link_runtime(gid, instr.forward, end_gid))
            if instr.reverse:
                work.merge(
                    self.remove_link_runtime(end_gid, instr.reverse, gid)
                )
            work.nodes += 1
        return work

    def marker_set_color(self, cid: int, instr: MarkerSetColor) -> WorkReport:
        """Recolor every locally marked node."""
        tables = self.clusters[cid]
        work = WorkReport(words=tables.status.num_words)
        for lid in tables.status.nodes_with(instr.marker):
            tables.node_table.color[lid] = instr.color
            gid = tables.to_global[lid]
            self.network.set_color(gid, instr.color)
            work.nodes += 1
        return work

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def collect_node(
        self, cid: int, instr: CollectNode
    ) -> Tuple[List[Tuple[int, str]], WorkReport]:
        """Collect (gid, name) for locally marked nodes."""
        tables = self.clusters[cid]
        work = WorkReport(words=tables.status.num_words)
        out = []
        for lid in tables.status.nodes_with(instr.marker):
            gid = tables.to_global[lid]
            out.append((gid, self.node_name(gid)))
            work.nodes += 1
        return out, work

    def collect_marker(
        self, cid: int, instr: CollectMarker
    ) -> Tuple[List[Tuple[int, float, int]], WorkReport]:
        """Collect (gid, value, origin) for locally marked nodes."""
        tables = self.clusters[cid]
        work = WorkReport(words=tables.status.num_words)
        out = []
        for lid in tables.status.nodes_with(instr.marker):
            gid = tables.to_global[lid]
            out.append(
                (
                    gid,
                    tables.node_table.get_value(lid, instr.marker),
                    tables.node_table.get_origin(lid, instr.marker),
                )
            )
            work.nodes += 1
        return out, work

    def collect_relation(
        self, cid: int, instr: CollectRelation
    ) -> Tuple[List[Tuple[int, str, int, float]], WorkReport]:
        """Collect matching links leaving locally marked nodes."""
        tables = self.clusters[cid]
        rid = self.network.relations.get(instr.relation)
        work = WorkReport(words=tables.status.num_words)
        out = []
        if rid is None:
            return out, work
        for lid in tables.status.nodes_with(instr.marker):
            gid = tables.to_global[lid]
            entries, scanned = tables.relations.links_of(lid)
            work.slots += scanned
            for entry in entries:
                if entry.relation == rid:
                    out.append(
                        (gid, instr.relation, entry.dest_global, entry.weight)
                    )
            work.nodes += 1
        return out, work

    def collect_color(
        self, cid: int, instr: CollectColor
    ) -> Tuple[List[Tuple[int, int]], WorkReport]:
        """Collect (gid, color) for locally marked nodes."""
        tables = self.clusters[cid]
        work = WorkReport(words=tables.status.num_words)
        out = []
        for lid in tables.status.nodes_with(instr.marker):
            gid = tables.to_global[lid]
            out.append((gid, int(tables.node_table.color[lid])))
            work.nodes += 1
        return out, work

    # ------------------------------------------------------------------
    # Whole-state queries (tests / applications)
    # ------------------------------------------------------------------
    def marker_set_nodes(self, marker: int) -> List[int]:
        """Global ids of all nodes where ``marker`` is set."""
        out: List[int] = []
        for tables in self.clusters:
            out.extend(
                tables.to_global[lid]
                for lid in tables.status.nodes_with(marker)
            )
        return sorted(out)

    def marker_value(self, marker: int, node_ref) -> float:
        """Value of a complex marker at one node."""
        cid, lid = self.address(node_ref)
        return self.clusters[cid].node_table.get_value(lid, marker)

    def marker_test(self, marker: int, node_ref) -> bool:
        """Whether a marker is set at one node."""
        cid, lid = self.address(node_ref)
        return self.clusters[cid].status.test(marker, lid)

    def status_snapshot(self) -> Dict[int, "object"]:
        """Per-cluster status-table snapshots (equivalence testing)."""
        return {
            t.cluster_id: t.status.snapshot() for t in self.clusters
        }
