"""Interchangeable PROPAGATE execution backends.

The functional engine originally drove propagation through a
pure-Python breadth-first worklist.  That loop is the *golden model*:
exact semantics, one arrival at a time.  This module keeps it
(:class:`PythonBackend`) and adds :class:`VectorizedBackend`, which
runs the same computation wave-synchronously with numpy — dense
arrival arrays, CSR-style adjacency gathered in bulk, bit-packed
status updates done a word at a time — while reproducing the golden
model bit for bit: identical marker status/value/origin state,
identical :class:`~repro.core.state.WorkReport` counters, identical
alpha / max-hops / remote-message / arrival statistics.

Equivalence rests on a property of the golden loop worth stating
explicitly: the FIFO worklist makes it **level-synchronous**.  Seeds
expand first; every arrival they emit is processed before any arrival
emitted by a level-1 expansion, and so on.  Within one level the order
is fully determined — seeds in (cluster, local) order, and each
expansion emits its local children before its remote children, each
group in (relation-slot, rule-move) order.  The vectorized backend
materializes one level ("wave") at a time as arrays sorted by exactly
that key, so even order-sensitive tie-breaks (which origin wrote a
register first, which arrival consumed the expansion budget) come out
identical.  Arrival values are carried as float64, the same precision
as Python floats, and registers are read/written through the same
float32 tables, so arithmetic rounds identically too.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Type, Union

import numpy as np

from ..isa.functions import always_alive
from ..isa.instructions import Propagate, is_complex
from .state import MAX_EXPANSIONS, MachineState, WorkReport
from .tables import EMPTY_SLOT


@dataclass
class PropagationOutcome:
    """Everything one PROPAGATE produced, backend-independently."""

    work: WorkReport = field(default_factory=WorkReport)
    #: Number of simultaneously activated source nodes (α, §II-C).
    alpha: int = 0
    #: Longest path any marker traveled (hops).
    max_hops: int = 0
    #: Cross-cluster activation messages emitted.
    remote_messages: int = 0
    #: Total marker deliveries.
    arrivals: int = 0
    #: Synchronous wave count (equals ``max_hops``: every wave that
    #: runs delivers at least one marker one hop further out).
    waves: int = 0


class PropagationBackend:
    """Protocol for PROPAGATE executors over a :class:`MachineState`.

    A backend receives the shared machine state and one instruction and
    must leave the state exactly as the golden Python model would,
    returning the same :class:`PropagationOutcome`.
    """

    name: str = "abstract"

    def propagate(
        self,
        state: MachineState,
        instruction: Propagate,
        level: int = 0,
    ) -> PropagationOutcome:
        raise NotImplementedError


class PythonBackend(PropagationBackend):
    """The golden model: exact breadth-first worklist, one arrival at
    a time, driving the per-arrival :class:`MachineState` primitives."""

    name = "python"

    def propagate(
        self,
        state: MachineState,
        instruction: Propagate,
        level: int = 0,
    ) -> PropagationOutcome:
        ctx = state.make_context(instruction, level)
        work = WorkReport()
        queue = deque()

        for cid in range(state.num_clusters):
            seeds, seed_work = state.seeds(ctx, cid)
            work.merge(seed_work)
            # Seeds are expanded directly: the origin node re-emits the
            # marker without receiving it.
            for seed in seeds:
                local_out, remote_out, expand_work = state.expand(ctx, seed)
                work.merge(expand_work)
                queue.extend(local_out)
                queue.extend(state.message_to_arrival(m) for m in remote_out)

        while queue:
            arrival = queue.popleft()
            should_expand, deliver_work = state.deliver(ctx, arrival)
            work.merge(deliver_work)
            if not should_expand:
                continue
            local_out, remote_out, expand_work = state.expand(ctx, arrival)
            work.merge(expand_work)
            queue.extend(local_out)
            queue.extend(state.message_to_arrival(m) for m in remote_out)

        return PropagationOutcome(
            work=work,
            alpha=ctx.alpha,
            max_hops=ctx.max_hops,
            remote_messages=ctx.remote_messages,
            arrivals=ctx.total_arrivals,
            waves=ctx.max_hops,
        )


@dataclass
class _Adjacency:
    """Flat, machine-wide CSR view of every cluster's relation table.

    Local ids are renumbered into one flat space (cluster-major, so
    flat order equals the golden model's seed-scan order); continuation
    chains and overflow slots are pre-walked into plain edge lists.
    """

    offsets: np.ndarray            # (C+1,) cluster id -> flat base
    n_total: int
    cluster_of: np.ndarray         # (N,) flat -> cluster id
    local_of: np.ndarray           # (N,) flat -> local id
    to_global: np.ndarray          # (N,) flat -> global node id
    indptr: np.ndarray             # (N+1,) CSR row pointers
    edge_rel: np.ndarray           # relation id per edge
    edge_dest: np.ndarray          # flat destination per edge
    edge_dest_cluster: np.ndarray  # destination cluster per edge
    edge_weight: np.ndarray        # float64 weight per edge
    scanned: np.ndarray            # (N,) slots links_of would scan


class VectorizedBackend(PropagationBackend):
    """Wave-synchronous numpy implementation of PROPAGATE.

    Holds no marker state of its own — it reads and writes the same
    bit-packed status words and float32 value registers as the golden
    model, just in bulk.  The only derived structure is the flat CSR
    adjacency, cached across calls and invalidated by
    :attr:`MachineState.mutation_version`.

    Duplicate same-wave arrivals at one (node, rule-state) are the one
    place bulk operations cannot express the golden model's sequential
    semantics (each arrival sees its predecessors' register writes and
    expansion records); those groups — rare outside adversarial inputs
    — fall back to an in-order scalar loop while everything else in
    the wave stays vectorized.
    """

    name = "vectorized"

    def __init__(self) -> None:
        self._adj: Optional[_Adjacency] = None
        self._adj_state: Optional[MachineState] = None
        self._adj_version: int = -1

    # -- adjacency cache -------------------------------------------------
    def _adjacency(self, state: MachineState) -> _Adjacency:
        if (
            self._adj is None
            or self._adj_state is not state
            or self._adj_version != state.mutation_version
        ):
            self._adj = self._build_adjacency(state)
            self._adj_state = state
            self._adj_version = state.mutation_version
        return self._adj

    @staticmethod
    def _build_adjacency(state: MachineState) -> _Adjacency:
        clusters = state.clusters
        sizes = np.array([t.num_nodes for t in clusters], dtype=np.int64)
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        n_total = int(offsets[-1])
        cluster_of = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
        local_of = (
            np.concatenate([np.arange(s, dtype=np.int64) for s in sizes])
            if n_total
            else np.zeros(0, dtype=np.int64)
        )
        to_global = (
            np.concatenate(
                [np.asarray(t.to_global, dtype=np.int64) for t in clusters]
            )
            if n_total
            else np.zeros(0, dtype=np.int64)
        )

        indptr = np.zeros(n_total + 1, dtype=np.int64)
        scanned = np.zeros(n_total, dtype=np.int64)
        rel_parts, destc_parts, destf_parts, w_parts = [], [], [], []
        for t in clusters:
            r = t.relations
            n = t.num_nodes
            if n == 0:
                continue
            base = int(offsets[t.cluster_id])
            reltab = r.relation[:n]
            cont = r.cont_relation_id
            needs_walk = r.has_overflow or (
                cont is not None and bool((reltab == cont).any())
            )
            if not needs_walk:
                # Pure static slots: edges are the filled slots in
                # (node, slot) order — exactly links_of's order — and
                # the scan count is the fill count.
                filled = reltab != EMPTY_SLOT
                counts = filled.sum(axis=1).astype(np.int64)
                rows, cols = np.nonzero(filled)
                dc = r.dest_cluster[:n][rows, cols].astype(np.int64)
                dl = r.dest_local[:n][rows, cols].astype(np.int64)
                rel_parts.append(reltab[rows, cols].astype(np.int64))
                destc_parts.append(dc)
                destf_parts.append(offsets[dc] + dl)
                w_parts.append(r.weight[:n][rows, cols].astype(np.float64))
                indptr[base + 1: base + n + 1] = counts
                scanned[base: base + n] = counts
            else:
                rel_l, dc_l, df_l, w_l = [], [], [], []
                for lid in range(n):
                    entries, sc = r.links_of(lid)
                    scanned[base + lid] = sc
                    indptr[base + lid + 1] = len(entries)
                    for e in entries:
                        rel_l.append(e.relation)
                        dc_l.append(e.dest_cluster)
                        df_l.append(int(offsets[e.dest_cluster]) + e.dest_local)
                        w_l.append(e.weight)
                rel_parts.append(np.asarray(rel_l, dtype=np.int64))
                destc_parts.append(np.asarray(dc_l, dtype=np.int64))
                destf_parts.append(np.asarray(df_l, dtype=np.int64))
                w_parts.append(np.asarray(w_l, dtype=np.float64))

        np.cumsum(indptr, out=indptr)
        empty64 = np.zeros(0, dtype=np.int64)
        return _Adjacency(
            offsets=offsets,
            n_total=n_total,
            cluster_of=cluster_of,
            local_of=local_of,
            to_global=to_global,
            indptr=indptr,
            edge_rel=np.concatenate(rel_parts) if rel_parts else empty64,
            edge_dest=np.concatenate(destf_parts) if destf_parts else empty64,
            edge_dest_cluster=(
                np.concatenate(destc_parts) if destc_parts else empty64
            ),
            edge_weight=(
                np.concatenate(w_parts)
                if w_parts
                else np.zeros(0, dtype=np.float64)
            ),
            scanned=scanned,
        )

    # -- the wave loop ---------------------------------------------------
    def propagate(
        self,
        state: MachineState,
        instruction: Propagate,
        level: int = 0,
    ) -> PropagationOutcome:
        adj = self._adjacency(state)
        work = WorkReport()
        m1, m2 = instruction.marker1, instruction.marker2
        complex1, complex2 = is_complex(m1), is_complex(m2)

        # Dense rule-state indexing: table states plus any next-states
        # referenced by moves (terminal states have no table entry).
        rule = instruction.rule
        compiled = state.compile_rule(rule)
        state_ids = set(compiled)
        state_ids.add(rule.initial_state)
        for moves in compiled.values():
            for _rid, nxt in moves:
                state_ids.add(nxt)
        states_sorted = sorted(state_ids)
        sidx_of = {s: i for i, s in enumerate(states_sorted)}
        moves_by_sidx = [
            tuple((rid, sidx_of[nxt]) for rid, nxt in compiled.get(s, ()))
            for s in states_sorted
        ]
        S = len(states_sorted)
        hop = state.functions.hop(instruction.function)

        # Per-(flat node, rule-state) expansion bookkeeping, the dense
        # equivalent of PropagationContext.expanded/expansions.
        expanded_flag = np.zeros(adj.n_total * S, dtype=bool)
        expanded_val = np.zeros(adj.n_total * S, dtype=np.float64)
        exp_count = np.zeros(adj.n_total * S, dtype=np.int32)

        total_arrivals = 0
        remote_messages = 0
        max_hops = 0
        empty_frontier = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.int64),
        )

        # -- hop function, bulk or elementwise ---------------------------
        if hop.vapply is not None:
            def hop_apply(values, weights):
                return np.asarray(hop.vapply(values, weights),
                                  dtype=np.float64)
        else:
            def hop_apply(values, weights):
                return np.array(
                    [hop.combine(v, w)
                     for v, w in zip(values.tolist(), weights.tolist())],
                    dtype=np.float64,
                )

        if hop.valive is not None:
            def hop_alive(values):
                mask = np.asarray(hop.valive(values), dtype=bool)
                return None if mask.all() else mask
        elif hop.alive is always_alive:
            def hop_alive(values):
                return None
        else:
            def hop_alive(values):
                mask = np.fromiter(
                    (bool(hop.alive(v)) for v in values.tolist()),
                    dtype=bool,
                    count=values.size,
                )
                return None if mask.all() else mask

        # -- scatter/gather over the per-cluster tables ------------------
        def per_cluster(flats):
            cl = adj.cluster_of[flats]
            for cid in np.unique(cl):
                sel = cl == cid
                yield state.clusters[int(cid)], sel, adj.local_of[flats[sel]]

        def test_bits(flats):
            out = np.empty(flats.size, dtype=bool)
            for t, sel, lids in per_cluster(flats):
                out[sel] = t.status.test_many(m2, lids)
            return out

        def set_bits(flats):
            for t, sel, lids in per_cluster(flats):
                t.status.set_many(m2, lids)

        def gather_values(flats):
            out = np.empty(flats.size, dtype=np.float64)
            for t, sel, lids in per_cluster(flats):
                out[sel] = t.node_table.value[lids, m2].astype(np.float64)
            return out

        def scatter_values(flats, values, origins):
            for t, sel, lids in per_cluster(flats):
                t.node_table.value[lids, m2] = values[sel]
                t.node_table.origin[lids, m2] = origins[sel]

        def read_value(flat):
            cid = int(adj.cluster_of[flat])
            lid = int(adj.local_of[flat])
            return float(state.clusters[cid].node_table.value[lid, m2])

        def write_value(flat, value, origin):
            cid = int(adj.cluster_of[flat])
            lid = int(adj.local_of[flat])
            table = state.clusters[cid].node_table
            table.value[lid, m2] = value
            table.origin[lid, m2] = origin

        # -- wave steps --------------------------------------------------
        def expand(nodes, sidxs, values, origins):
            """Emit all children of this wave's expanding arrivals, in
            the golden order: (arrival position, local-before-remote,
            relation slot, rule move)."""
            nonlocal remote_messages
            if nodes.size == 0:
                return empty_frontier
            position = np.arange(nodes.size, dtype=np.int64)
            cand = []
            for sidx in np.unique(sidxs):
                moves = moves_by_sidx[sidx]
                if not moves:
                    continue  # recorded, but no slots scanned
                grp = sidxs == sidx
                gn = nodes[grp]
                work.slots += int(adj.scanned[gn].sum())
                deg = adj.indptr[gn + 1] - adj.indptr[gn]
                total = int(deg.sum())
                if total == 0:
                    continue
                gp = position[grp]
                gv = values[grp]
                go = origins[grp]
                rep = np.repeat(np.arange(gn.size, dtype=np.int64), deg)
                seg = np.cumsum(deg) - deg
                flat_i = np.arange(total, dtype=np.int64)
                slot = flat_i - seg[rep]
                eidx = adj.indptr[gn][rep] + slot
                erel = adj.edge_rel[eidx]
                src_cluster = adj.cluster_of[gn][rep]
                for m, (rid, nsidx) in enumerate(moves):
                    match = erel == rid
                    cnt = int(np.count_nonzero(match))
                    if cnt == 0:
                        continue
                    work.fp_ops += cnt  # hop applied before liveness
                    em = eidx[match]
                    rm = rep[match]
                    jm = slot[match]
                    sc = src_cluster[match]
                    nv = hop_apply(gv[rm], adj.edge_weight[em])
                    live = hop_alive(nv)
                    if live is not None:
                        em, rm, jm = em[live], rm[live], jm[live]
                        sc, nv = sc[live], nv[live]
                        if em.size == 0:
                            continue
                    dst = adj.edge_dest[em]
                    remote = (adj.edge_dest_cluster[em] != sc).astype(np.uint8)
                    nmsg = int(remote.sum())
                    work.messages += nmsg
                    remote_messages += nmsg
                    cand.append((
                        gp[rm],
                        remote,
                        jm,
                        np.full(em.size, m, dtype=np.int64),
                        dst,
                        np.full(em.size, nsidx, dtype=np.int64),
                        nv,
                        go[rm],
                    ))
            if not cand:
                return empty_frontier
            p = np.concatenate([c[0] for c in cand])
            rem = np.concatenate([c[1] for c in cand])
            j = np.concatenate([c[2] for c in cand])
            mv = np.concatenate([c[3] for c in cand])
            dst = np.concatenate([c[4] for c in cand])
            nsx = np.concatenate([c[5] for c in cand])
            val = np.concatenate([c[6] for c in cand])
            org = np.concatenate([c[7] for c in cand])
            order = np.lexsort((mv, j, rem, p))
            return dst[order], nsx[order], val[order], org[order]

        def deliver(dest, values, origins):
            """Set marker-2 bits and min-update the value registers for
            one wave of arrivals."""
            nonlocal total_arrivals
            n = dest.size
            total_arrivals += n
            work.nodes += n
            work.sets += n
            order = np.argsort(dest, kind="stable")
            sd = dest[order]
            starts = np.ones(n, dtype=bool)
            starts[1:] = sd[1:] != sd[:-1]
            uniq = sd[starts]
            bit_before = test_bits(uniq)
            set_bits(uniq)
            if not complex2:
                return
            if uniq.size == n:
                stored = gather_values(dest)
                was_clear = np.empty(n, dtype=bool)
                was_clear[order] = ~bit_before
                write = was_clear | (values < stored)
                work.fp_ops += int(np.count_nonzero(write))
                if write.any():
                    scatter_values(dest[write], values[write], origins[write])
                return
            start_pos = np.nonzero(starts)[0]
            counts = np.diff(np.append(start_pos, n))
            singles = counts == 1
            if singles.any():
                oi = order[start_pos[singles]]
                stored = gather_values(dest[oi])
                write = (~bit_before[singles]) | (values[oi] < stored)
                work.fp_ops += int(np.count_nonzero(write))
                if write.any():
                    sel = oi[write]
                    scatter_values(dest[sel], values[sel], origins[sel])
            for gi in np.nonzero(~singles)[0]:
                members = order[start_pos[gi]: start_pos[gi] + counts[gi]]
                node = int(uniq[gi])
                bit = bool(bit_before[gi])
                current = read_value(node)
                for k, i in enumerate(members):
                    v = float(values[i])
                    if (k == 0 and not bit) or v < current:
                        write_value(node, v, int(origins[i]))
                        # Re-read, not cache: the register is float32,
                        # and the golden model compares each arrival
                        # against the *rounded* stored value.
                        current = read_value(node)
                        work.fp_ops += 1

        def decide(dest, sidxs, values):
            """Which arrivals expand, consuming the per-key budget in
            the golden order."""
            n = dest.size
            keys = dest * S + sidxs
            order = np.argsort(keys, kind="stable")
            sk = keys[order]
            starts = np.ones(n, dtype=bool)
            starts[1:] = sk[1:] != sk[:-1]
            if starts.all():
                flag = expanded_flag[keys]
                if complex2:
                    want = ~flag | (values < expanded_val[keys])
                else:
                    want = ~flag
                allowed = want & (exp_count[keys] < MAX_EXPANSIONS)
                ak = keys[allowed]
                expanded_flag[ak] = True
                expanded_val[ak] = values[allowed]
                exp_count[ak] += 1
                return allowed
            decided = np.zeros(n, dtype=bool)
            start_pos = np.nonzero(starts)[0]
            counts = np.diff(np.append(start_pos, n))
            singles = counts == 1
            if singles.any():
                oi = order[start_pos[singles]]
                k1 = keys[oi]
                flag = expanded_flag[k1]
                if complex2:
                    want = ~flag | (values[oi] < expanded_val[k1])
                else:
                    want = ~flag
                allowed = want & (exp_count[k1] < MAX_EXPANSIONS)
                ak = k1[allowed]
                expanded_flag[ak] = True
                expanded_val[ak] = values[oi][allowed]
                exp_count[ak] += 1
                decided[oi[allowed]] = True
            for gi in np.nonzero(~singles)[0]:
                members = order[start_pos[gi]: start_pos[gi] + counts[gi]]
                k = int(sk[start_pos[gi]])
                for i in members:
                    v = float(values[i])
                    want = (not expanded_flag[k]) or (
                        complex2 and v < float(expanded_val[k])
                    )
                    if want and exp_count[k] < MAX_EXPANSIONS:
                        expanded_flag[k] = True
                        expanded_val[k] = v
                        exp_count[k] += 1
                        decided[i] = True
            return decided

        # -- seeds -------------------------------------------------------
        seed_parts, val_parts = [], []
        for t in state.clusters:
            work.words += t.status.num_words
            lids = t.status.nodes_with_array(m1)
            if lids.size:
                seed_parts.append(adj.offsets[t.cluster_id] + lids)
                if complex1:
                    val_parts.append(
                        t.node_table.value[lids, m1].astype(np.float64)
                    )
                else:
                    val_parts.append(np.zeros(lids.size, dtype=np.float64))
        if seed_parts:
            seed_nodes = np.concatenate(seed_parts)
            seed_vals = np.concatenate(val_parts)
        else:
            seed_nodes = np.zeros(0, dtype=np.int64)
            seed_vals = np.zeros(0, dtype=np.float64)
        alpha = int(seed_nodes.size)
        work.nodes += alpha
        seed_origins = adj.to_global[seed_nodes]

        init_sidx = sidx_of[rule.initial_state]
        seed_keys = seed_nodes * S + init_sidx
        expanded_flag[seed_keys] = True
        expanded_val[seed_keys] = seed_vals
        exp_count[seed_keys] = 1

        frontier = expand(
            seed_nodes,
            np.full(alpha, init_sidx, dtype=np.int64),
            seed_vals,
            seed_origins,
        )
        wave = 1
        while frontier[0].size:
            max_hops = wave
            dest, dsidx, dval, dorig = frontier
            deliver(dest, dval, dorig)
            decided = decide(dest, dsidx, dval)
            sel = np.nonzero(decided)[0]
            frontier = expand(dest[sel], dsidx[sel], dval[sel], dorig[sel])
            wave += 1

        return PropagationOutcome(
            work=work,
            alpha=alpha,
            max_hops=max_hops,
            remote_messages=remote_messages,
            arrivals=total_arrivals,
            waves=max_hops,
        )


#: Registered backends by name.
BACKENDS: Dict[str, Type[PropagationBackend]] = {
    PythonBackend.name: PythonBackend,
    VectorizedBackend.name: VectorizedBackend,
}

_default_backend = "python"


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (CLI ``--backend``)."""
    global _default_backend
    if name not in BACKENDS:
        raise ValueError(
            f"unknown propagation backend: {name!r}; "
            f"known: {sorted(BACKENDS)}"
        )
    _default_backend = name


def get_default_backend() -> str:
    """Name of the process-wide default backend."""
    return _default_backend


def make_backend(
    backend: Union[None, str, PropagationBackend] = None,
) -> PropagationBackend:
    """Resolve a backend spec (name, instance, or None = default)."""
    if backend is None:
        backend = _default_backend
    if isinstance(backend, str):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown propagation backend: {backend!r}; "
                f"known: {sorted(BACKENDS)}"
            )
        return BACKENDS[backend]()
    return backend
