"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``parse "SENTENCE"``
    Parse a newswire sentence on the simulated 72-PE machine and print
    the extracted event template with timing.
``speech "SENTENCE"``
    Synthesize a noisy word lattice from the sentence and run the
    speech parser over it.
``experiments [IDS...] [--full] [--list] [--trace PATH]``
    Regenerate the paper's tables/figures and extension studies
    (including ``faultdeg``, the fault-injection degradation sweep,
    and ``overload``, the serving-under-overload sweep);
    same as ``python -m repro.experiments.runner``.  With ``--trace``
    every simulation in the run is captured into one Perfetto file
    (best with a single experiment id).
``serve [--queries N] [--load X] [--fault-fraction F] [--trace PATH]``
    Drive the concurrent query-serving host layer with a synthetic
    arrival stream of inheritance queries and print the serving
    report (admission, shedding, deadlines, hedges, breakers).
    ``--trace`` additionally writes a Chrome-trace-event/Perfetto
    JSON timeline of the run.
``trace WORKLOAD [--out trace.json] [--smoke] [--metrics-out PATH]``
    Capture a canonical workload (``propagate``, ``faults``,
    ``overload``, ``chaos``, or ``fleetchaos``, the sharded fleet
    through a regional outage) as a validated Perfetto trace with the
    metrics registry embedded; open the file in ``ui.perfetto.dev``.  See
    ``docs/OBSERVABILITY.md``.  ``--metrics-out`` additionally dumps
    the metrics registry as a standalone JSON document.
``analyze TRACE [--report out.md] [--compare golden.json]``
    Run the trace-analysis engine over a capture: critical paths,
    per-query latency attribution, measured α/β, structural
    anomalies, and (with ``--compare``) the metric-drift gate against
    a golden snapshot — exits non-zero on drift beyond tolerance.
``bench [WORKLOADS...] [--smoke] [--backend B] [--out BENCH_PERF.json]``
    Measure wall-clock events/sec of the simulator hot paths: the
    propagate-heavy, fault-recovery, overload-serving, and
    instruction-dispatch workloads, plus ``propagate-vec``, which runs
    the large-KB functional lane on both propagation backends and
    pins their bit-for-bit equivalence (exits non-zero on
    divergence).  ``--backend python|vectorized|both`` selects the
    backend for engine lanes.  Every run also appends one record per
    lane — per-run walls, environment fingerprint — to
    ``BENCH_HISTORY.jsonl`` (``--history PATH`` / ``--no-history``).
``perf profile WORKLOAD [--folded-out F --report R --json J]``
    Run a bench lane under the wall-clock sampling profiler: folded
    flamegraph stacks, a hot-spot report with subsystem bucket
    rollups, and (with ``--trace-join``) a wall-vs-simulated join of
    real seconds onto pipeline phases.  See ``docs/PERF.md``.
``perf check [--history PATH] [--window N]``
    Statistical regression gate over the bench-history trajectory:
    the newest record per lane vs its trailing window (median
    baseline, MAD/bootstrap bands).  Exits 1 on a significant
    regression — the wall-clock counterpart of the ``analyze`` drift
    gate.
``info``
    Print the machine configuration and knowledge-base statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _build(kb_nodes: int):
    from repro.apps.nlu import build_domain_kb
    from repro.machine import SnapMachine, snap1_16cluster

    kb = build_domain_kb(total_nodes=kb_nodes)
    machine = SnapMachine(kb.network, snap1_16cluster())
    return kb, machine


def cmd_parse(args) -> int:
    """Handle the `parse` subcommand."""
    from repro.apps.nlu import MemoryBasedParser, extract_template

    kb, machine = _build(args.kb_nodes)
    parser = MemoryBasedParser(machine, kb)
    result = parser.parse(args.sentence)
    template = extract_template(result, kb)
    if template is None:
        print("no completed hypothesis")
        if result.oov:
            print(f"out of vocabulary: {', '.join(result.oov)}")
        return 1
    print(template.render())
    print(
        f"\nP.P. {result.pp_time_us / 1e3:.2f} ms + "
        f"M.B. {result.mb_time_us / 1e3:.2f} ms simulated, "
        f"{result.instruction_count} SNAP instructions"
    )
    return 0


def cmd_speech(args) -> int:
    """Handle the `speech` subcommand."""
    from repro.apps import SpeechParser, synthesize_lattice

    kb, machine = _build(args.kb_nodes)
    parser = SpeechParser(machine, kb)
    lattice = synthesize_lattice(
        args.sentence, confusability=args.confusability
    )
    print("lattice: " + " ".join(
        "/".join(h.word for h in slot) for slot in lattice.slots
    ))
    result = parser.understand(lattice)
    print(f"meaning: {result.winner} (cost {result.cost})")
    print(
        f"{result.time_us / 1e3:.2f} ms simulated, beta max "
        f"{result.beta_max:.0f}"
    )
    return 0 if result.winner else 1


def cmd_experiments(args) -> int:
    """Handle the `experiments` subcommand."""
    from repro.experiments.runner import main as runner_main

    argv = list(args.ids)
    if args.full:
        argv.append("--full")
    if args.backend:
        argv.extend(["--backend", args.backend])
    if args.out:
        argv.extend(["--out", args.out])
    if args.profile:
        argv.extend(["--profile", args.profile])
    if args.list:
        argv.append("--list")
    if not args.trace:
        return runner_main(argv)
    # Install a process-global tracer so every nested simulation the
    # selected experiments start is captured, without threading a
    # tracer through each experiment's signature.
    from repro.obs import Tracer, set_tracer, write_chrome_json

    tracer = Tracer()
    set_tracer(tracer)
    try:
        code = runner_main(argv)
    finally:
        set_tracer(None)
    write_chrome_json(args.trace, tracer)
    print(f"wrote {args.trace} ({tracer.num_events} trace events)")
    return code


def cmd_serve(args) -> int:
    """Handle the `serve` subcommand."""
    from repro.experiments.overload import (
        build_queries, uncontended_profile,
    )
    from repro.host import HostConfig, ServingHost
    from repro.network.generator import generate_hierarchy_kb

    network = generate_hierarchy_kb(args.kb_nodes, branching=3)
    config = HostConfig(
        num_replicas=args.replicas,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        faulty_replica_fraction=args.fault_fraction,
        fault_seed=args.seed,
    )
    mean_service, p99 = uncontended_profile(network, config)
    sustainable = config.num_replicas / mean_service
    deadline_us = args.deadline_us or 2.5 * p99
    queries = build_queries(
        args.queries, args.load * sustainable, deadline_us, seed=args.seed
    )
    tracer = metrics = None
    if args.trace:
        from repro.obs import MetricsRegistry, Tracer

        tracer, metrics = Tracer(), MetricsRegistry()
    report = ServingHost(
        network, config, tracer=tracer, metrics=metrics
    ).serve(queries)
    print(
        f"offered {args.load:.1f}x sustainable "
        f"({args.load * sustainable * 1e6:.0f} q/s), "
        f"deadline {deadline_us:.0f} us"
    )
    for key, value in report.summary().items():
        print(f"  {key}: {value}")
    if args.trace:
        from repro.obs import write_chrome_json

        write_chrome_json(args.trace, tracer, metrics=metrics)
        print(f"wrote {args.trace} ({tracer.num_events} trace events)")
    return 0


def cmd_trace(args) -> int:
    """Handle the `trace` subcommand."""
    from repro.obs.capture import main as capture_main

    argv = [args.workload, "--out", args.out]
    if args.smoke:
        argv.append("--smoke")
    if args.metrics_out:
        argv.extend(["--metrics-out", args.metrics_out])
    return capture_main(argv)


def cmd_analyze(args) -> int:
    """Handle the `analyze` subcommand."""
    from repro.obs.analyze import main as analyze_main

    argv = [args.trace]
    if args.report:
        argv.extend(["--report", args.report])
    if args.json:
        argv.extend(["--json", args.json])
    if args.compare:
        argv.extend(["--compare", args.compare])
    if args.snapshot_out:
        argv.extend(["--snapshot-out", args.snapshot_out])
    return analyze_main(argv)


def cmd_monitor(args) -> int:
    """Handle the `monitor` subcommand."""
    from repro.obs.live.cli import main as monitor_main

    argv = [args.workload]
    if args.full:
        argv.append("--full")
    if args.from_trace:
        argv.extend(["--from-trace", args.from_trace])
    if args.report:
        argv.extend(["--report", args.report])
    if args.json:
        argv.extend(["--json", args.json])
    if args.compare:
        argv.extend(["--compare", args.compare])
    if args.check:
        argv.append("--check")
    if args.mute:
        argv.extend(["--mute", args.mute])
    return monitor_main(argv)


def cmd_bench(args) -> int:
    """Handle the `bench` subcommand."""
    from repro.bench import main as bench_main

    argv = list(args.workloads)
    if args.smoke:
        argv.append("--smoke")
    if args.backend:
        argv.extend(["--backend", args.backend])
    argv.extend(["--out", args.out])
    if args.snapshot:
        argv.extend(["--snapshot", args.snapshot])
    argv.extend(["--history", args.history])
    if args.no_history:
        argv.append("--no-history")
    return bench_main(argv)


def cmd_perf(args) -> int:
    """Handle the `perf` subcommand (profile / check)."""
    from repro.obs.perf.cli import main as perf_main

    return perf_main(args.perf_args)


def cmd_info(args) -> int:
    """Handle the `info` subcommand."""
    from repro.machine import snap1_16cluster, snap1_full

    kb, machine = _build(args.kb_nodes)
    full = snap1_full()
    print("SNAP-1 prototype (full configuration):")
    print(f"  clusters: {full.num_clusters}, PEs: {full.total_pes}, "
          f"node capacity: {full.node_capacity}")
    experiment = snap1_16cluster()
    print("experiment configuration (paper SS IV):")
    print(f"  clusters: {experiment.num_clusters}, "
          f"PEs: {experiment.total_pes}")
    stats = kb.network.stats()
    print(f"knowledge base ({args.kb_nodes} requested nodes):")
    for key, value in stats.items():
        print(f"  {key}: {value}")
    print(f"  concept sequences: {len(kb.cs_roots)} "
          f"({len(kb.core_roots)} core)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    cli = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = cli.add_subparsers(dest="command", required=True)

    p = sub.add_parser("parse", help="parse a newswire sentence")
    p.add_argument("sentence")
    p.add_argument("--kb-nodes", type=int, default=3000)
    p.set_defaults(fn=cmd_parse)

    p = sub.add_parser("speech", help="understand a noisy word lattice")
    p.add_argument("sentence")
    p.add_argument("--kb-nodes", type=int, default=3000)
    p.add_argument("--confusability", type=float, default=0.8)
    p.set_defaults(fn=cmd_speech)

    p = sub.add_parser("experiments", help="regenerate paper artifacts")
    p.add_argument("ids", nargs="*")
    p.add_argument("--full", action="store_true")
    p.add_argument("--backend", default=None,
                   choices=["python", "vectorized"],
                   help="process-wide propagation backend for all "
                        "functional-engine runs")
    p.add_argument("--out")
    p.add_argument("--list", action="store_true",
                   help="list experiment ids and exit")
    p.add_argument("--trace", metavar="PATH",
                   help="capture every simulation into a Perfetto trace")
    p.add_argument("--profile", metavar="PATH",
                   help="write wall-clock folded stacks of the whole run")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser(
        "serve", help="run the concurrent query-serving host layer"
    )
    p.add_argument("--queries", type=int, default=100,
                   help="number of queries in the arrival stream")
    p.add_argument("--load", type=float, default=1.0,
                   help="offered load as a multiple of sustainable")
    p.add_argument("--fault-fraction", type=float, default=0.0,
                   help="fraction of replicas built degraded")
    p.add_argument("--replicas", type=int, default=4)
    p.add_argument("--queue-capacity", type=int, default=16)
    p.add_argument("--shed-policy", default="reject-newest",
                   choices=["reject-newest", "reject-over-deadline"])
    p.add_argument("--deadline-us", type=float, default=None,
                   help="per-query deadline (default: 2.5x p99)")
    p.add_argument("--kb-nodes", type=int, default=240)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", metavar="PATH",
                   help="write a Perfetto trace of the serving run")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "trace", help="capture a workload as a Perfetto trace"
    )
    p.add_argument("workload",
                   choices=["propagate", "faults", "overload", "chaos",
                            "fleetchaos"],
                   help="scenario to capture")
    p.add_argument("--out", default="trace.json",
                   help="output path (default: trace.json)")
    p.add_argument("--smoke", action="store_true",
                   help="small sizes for CI smoke runs")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="also dump the metrics registry as standalone JSON")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "analyze",
        help="critical paths, latency attribution, drift gate on a trace",
    )
    p.add_argument("trace",
                   help="trace JSON from `trace`/`serve` (or a metrics "
                        "snapshot JSON for drift-only checks)")
    p.add_argument("--report", metavar="PATH",
                   help="write the markdown report here (default: stdout)")
    p.add_argument("--json", metavar="PATH",
                   help="also write the analysis record as JSON")
    p.add_argument("--compare", metavar="GOLDEN",
                   help="golden snapshot; exit 1 on drift beyond tolerance")
    p.add_argument("--snapshot-out", metavar="PATH",
                   help="write this run's metrics snapshot")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "monitor",
        help="live SLO monitor: windowed telemetry, burn-rate alerts, "
             "ground-truth detection scoring",
    )
    p.add_argument("workload", choices=["chaos", "fleetchaos"],
                   help="workload to replay under the monitor")
    p.add_argument("--full", action="store_true",
                   help="full-size run (default: fast/smoke size)")
    p.add_argument("--from-trace", metavar="TRACE",
                   help="ingest an existing trace capture instead of "
                        "replaying (timeline only, no ground truth)")
    p.add_argument("--report", metavar="PATH",
                   help="write the ops timeline report here "
                        "(default: stdout)")
    p.add_argument("--json", metavar="PATH",
                   help="write the monitor snapshot (drift-gate "
                        "document) here")
    p.add_argument("--compare", metavar="GOLDEN",
                   help="golden snapshot; exit 1 on drift")
    p.add_argument("--check", action="store_true",
                   help="exit 1 unless the detection gate passes")
    p.add_argument("--mute", metavar="RULES",
                   help="comma-separated alert rules to mute")
    p.set_defaults(fn=cmd_monitor)

    p = sub.add_parser(
        "bench", help="wall-clock events/sec on the simulator hot paths"
    )
    p.add_argument("workloads", nargs="*",
                   help="workload ids (default: propagate propagate-vec "
                        "faults overload dispatch)")
    p.add_argument("--smoke", action="store_true",
                   help="small sizes for CI smoke runs")
    p.add_argument("--backend", default=None,
                   choices=["python", "vectorized", "both"],
                   help="propagation backend for the engine lanes; "
                        "'both' also checks cross-backend equivalence")
    p.add_argument("--out", default="BENCH_PERF.json")
    p.add_argument("--snapshot", metavar="PATH",
                   help="write deterministic fields as a drift snapshot")
    p.add_argument("--history", default="BENCH_HISTORY.jsonl",
                   metavar="PATH",
                   help="append per-lane records to this JSONL trajectory")
    p.add_argument("--no-history", action="store_true",
                   help="skip appending to the bench history")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "perf",
        help="wall-clock observatory: sampling profiler + bench-history "
             "regression gate",
    )
    p.add_argument("perf_args", nargs=argparse.REMAINDER,
                   help="perf subcommand and flags: "
                        "`profile WORKLOAD [--folded-out ...]` or "
                        "`check [--history ...]`")
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser("info", help="machine + knowledge base statistics")
    p.add_argument("--kb-nodes", type=int, default=3000)
    p.set_defaults(fn=cmd_info)

    args = cli.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
