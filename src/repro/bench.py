"""Wall-clock benchmark harness for the simulator hot paths.

Measures **events per second of wall-clock time** — simulator events
or marker deliveries divided by elapsed host time — on workloads
chosen to stress the hot paths of the system:

``propagate``
    Fan-out-heavy marker propagation.  With no ``--backend`` this is
    the historical DES lane (inheritance sweeps through the 16-cluster
    machine simulator).  With ``--backend`` it becomes the functional
    engine on a large hierarchy KB (60 K nodes full, ~6 K smoke) run
    through the selected propagation backend — the lane the vectorized
    backend targets.
``propagate-vec``
    The large-KB functional lane on **both** backends back to back:
    asserts bit-for-bit equivalence of final marker state, collect
    results, and work reports via a state fingerprint, then reports
    the vectorized/python speedup.
``faults``
    DES propagation under an aggressive fault pattern (offline
    clusters, dead links, transfer corruption): every message takes
    the ``route_avoiding`` path and retries/watchdogs exercise event
    cancellation.
``overload``
    The serving host under sustained overload: thousands of queries
    with deadline watchdogs, hedged retries, and admission shedding.
``dispatch``
    Instruction-dispatch micro-lane: a long stream of cheap non-
    propagate instructions through ``FunctionalEngine.execute``,
    guarding the table-driven dispatch against regressions back to
    per-call isinstance scans.

Because the simulator is deterministic, the event counts of a workload
never change between runs or code versions (the byte-identical-reports
guarantee); only the wall-clock denominator moves.  That makes
``events_per_sec`` a directly comparable trajectory across PRs —
``python -m repro bench`` writes the latest snapshot to
``BENCH_PERF.json`` and appends one record per lane (per-run walls,
environment fingerprint) to ``BENCH_HISTORY.jsonl``, the trajectory
``python -m repro perf check`` gates on.  Lanes time each repeat
separately, so every row carries ``wall_runs`` plus
min/median/stdev; a lane is tagged ``"unreliable": true`` when its
wall is below :data:`MIN_RELIABLE_WALL_S` (coarse clocks, tiny smoke
sizes) *or* its per-run walls scatter beyond
:data:`MAX_RELIABLE_REL_STDEV` — either way the rate must not
masquerade as a real measurement.
"""

from __future__ import annotations

import gc
import hashlib
import json
import platform
import statistics
import sys
import time
from typing import Any, Dict, List, Optional, Tuple


class BackendDivergenceError(RuntimeError):
    """The python and vectorized backends disagreed on a bench lane.

    Carries the partially-built lane ``record`` (with
    ``"equivalent": false``) so callers — the CLI, CI — can render
    what diverged instead of a bare traceback.
    """

    def __init__(self, message: str, record: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.record = record


def _start_clock() -> float:
    """Collect garbage left by setup/earlier workloads, then start
    timing.  Without this, measured wall time varies with workload run
    order (a prior workload's garbage gets collected inside the next
    one's timed region)."""
    gc.collect()
    return time.perf_counter()


#: Default output path (repo-root trajectory file, uploaded by CI).
DEFAULT_OUT = "BENCH_PERF.json"

#: Workload ids in report order.
WORKLOADS = ("propagate", "propagate-vec", "faults", "overload", "dispatch")

#: Backend choices accepted by ``--backend``.
BACKEND_CHOICES = ("python", "vectorized", "both")

#: Below this wall time the events/sec quotient is clock noise, not a
#: measurement; such lanes are flagged ``"unreliable": true``.
MIN_RELIABLE_WALL_S = 1e-4

#: A lane whose per-run walls scatter beyond this relative stdev
#: (stdev / median, ≥3 runs) is flagged unreliable: the machine was
#: too noisy for the rate to be a measurement.
MAX_RELIABLE_REL_STDEV = 0.25

#: Default history path for the appended per-lane trajectory.
DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"

#: Keys that vary run to run and must never enter a drift snapshot.
_NONDETERMINISTIC_KEYS = frozenset(
    (
        "wall_s", "events_per_sec", "unreliable", "speedup",
        "wall_runs", "wall_min_s", "wall_median_s", "wall_stdev_s",
        "environment",
    )
)


def _wall_stats(walls: List[float]) -> Dict[str, Any]:
    """Aggregate per-run wall times into a lane row's timing fields."""
    stats: Dict[str, Any] = {
        "wall_s": sum(walls),
        "wall_runs": list(walls),
    }
    if walls:
        stats["wall_min_s"] = min(walls)
        stats["wall_median_s"] = statistics.median(walls)
        stats["wall_stdev_s"] = (
            statistics.stdev(walls) if len(walls) >= 2 else 0.0
        )
    return stats


def _finalize_rate(record: Dict[str, Any]) -> Dict[str, Any]:
    """Attach events/sec and the unreliable-wall flag to a lane row."""
    wall = record.get("wall_s", 0.0)
    record["events_per_sec"] = (
        record["events"] / wall if wall > 0 else 0.0
    )
    if wall < MIN_RELIABLE_WALL_S:
        record["unreliable"] = True
    walls = record.get("wall_runs") or []
    median = record.get("wall_median_s", 0.0)
    if len(walls) >= 3 and median > 0:
        if record.get("wall_stdev_s", 0.0) / median > MAX_RELIABLE_REL_STDEV:
            record["unreliable"] = True
    return record


def _scrub_nondeterministic(value: Any) -> Any:
    """Recursively drop timing-derived keys (nested lanes included)."""
    if isinstance(value, dict):
        return {
            key: _scrub_nondeterministic(val)
            for key, val in value.items()
            if key not in _NONDETERMINISTIC_KEYS
        }
    return value


def _propagate_programs():
    from .isa import assemble

    texts = (
        """
        SEARCH-NODE thing b0
        PROPAGATE b0 b1 chain(inverse:is-a)
        COLLECT-NODE b1
        """,
        """
        SEARCH-NODE c1 b2
        PROPAGATE b2 b3 chain(inverse:is-a)
        COLLECT-NODE b3
        """,
        """
        SEARCH-NODE c2 b4
        PROPAGATE b4 b5 chain(inverse:is-a)
        COLLECT-NODE b5
        """,
    )
    return [assemble(text) for text in texts]


# ----------------------------------------------------------------------
# Functional-engine large-KB lane (the backend comparison surface)
# ----------------------------------------------------------------------
def _functional_programs():
    """Timed propagation sweeps.  Deliberately no COLLECT here: a
    full-KB collect is the same pure-Python loop on every backend and
    would dilute the propagation measurement; collects run once after
    the clock stops (see ``_collect_program``) so their results still
    feed the equivalence fingerprint."""
    from .isa import assemble

    texts = (
        """
        SEARCH-NODE thing b0
        PROPAGATE b0 b1 chain(inverse:is-a)
        """,
        """
        SEARCH-NODE thing m0 0.0
        PROPAGATE m0 m1 chain(inverse:is-a) add-weight
        """,
        """
        SEARCH-NODE c1 m2 0.0
        PROPAGATE m2 m3 chain(inverse:is-a) count-hops
        """,
    )
    return [assemble(text) for text in texts]


def _collect_program():
    from .isa import assemble

    return assemble(
        """
        COLLECT-NODE b1
        COLLECT-MARKER m1
        COLLECT-NODE m3
        """
    )


def _state_fingerprint(engine, results) -> str:
    """Digest of final marker state + all reports: byte-identical
    across backends iff they executed equivalently."""
    digest = hashlib.sha256()
    for tables in engine.state.clusters:
        digest.update(tables.status.snapshot().tobytes())
        digest.update(tables.node_table.value.tobytes())
        digest.update(tables.node_table.origin.tobytes())
    for result in results:
        for record in result.records:
            digest.update(repr((
                record.opcode,
                record.work.words, record.work.nodes, record.work.slots,
                record.work.sets, record.work.fp_ops, record.work.messages,
                record.work.links_made,
                record.alpha, record.max_hops, record.remote_messages,
                record.arrivals, record.result,
            )).encode())
    return digest.hexdigest()


def _functional_propagate(
    smoke: bool, backend: str, nodes: int
) -> Tuple[Dict[str, Any], str]:
    """Big-KB propagation through one backend; returns (row, digest)."""
    from .core import FunctionalEngine
    from .core.state import MachineState
    from .network.generator import generate_hierarchy_kb

    repeats = 2 if smoke else 3
    num_clusters = 16
    network = generate_hierarchy_kb(nodes, branching=3)
    state = MachineState(
        network, num_clusters, "round-robin", machine_capacity=2 * nodes
    )
    engine = FunctionalEngine(network, state=state, backend=backend)
    programs = _functional_programs()
    engine.run(programs[0])  # warm caches outside the clock
    state.reset_markers()
    events = 0
    results = []
    walls: List[float] = []
    for _ in range(repeats):
        start = _start_clock()
        state.reset_markers()
        results = [engine.run(program) for program in programs]
        walls.append(time.perf_counter() - start)
        events += sum(
            record.arrivals
            for result in results
            for record in result.records
        )
    # Collect results enter the fingerprint but not the clock (a
    # full-KB collect is backend-independent Python).
    results.append(engine.run(_collect_program()))
    row = {
        "events": events,
        **_wall_stats(walls),
        "runs": repeats * len(programs),
        "nodes": nodes,
        "clusters": num_clusters,
        "backend": backend,
    }
    return row, _state_fingerprint(engine, results)


def _lane_nodes(smoke: bool) -> int:
    return 6000 if smoke else 60000


def bench_propagate(
    smoke: bool = False, backend: Optional[str] = None
) -> Dict[str, Any]:
    """Fan-out-heavy propagation.

    Default (no backend): the DES machine-simulator lane.  With a
    backend: the functional engine on a large hierarchy KB, the
    surface where propagation backends compete.
    """
    if backend is not None and backend != "both":
        row, _ = _functional_propagate(smoke, backend, _lane_nodes(smoke))
        return row
    if backend == "both":
        return bench_propagate_vec(smoke, backend="both")

    from .machine import SnapMachine, snap1_16cluster
    from .network.generator import generate_hierarchy_kb

    repeats = 4 if smoke else 20
    network = generate_hierarchy_kb(360, branching=3)
    machine = SnapMachine(network, snap1_16cluster())
    programs = _propagate_programs()
    machine.run(programs[0])  # warm allocator/tables outside the clock
    events = 0
    walls: List[float] = []
    for _ in range(repeats):
        start = _start_clock()
        for program in programs:
            machine.reset_markers()
            events += machine.run(program).events_processed
        walls.append(time.perf_counter() - start)
    return {
        "events": events,
        **_wall_stats(walls),
        "runs": repeats * len(programs),
    }


def bench_propagate_vec(
    smoke: bool = False, backend: Optional[str] = None
) -> Dict[str, Any]:
    """Backend comparison lane: both backends on the same large KB,
    equivalence pinned by state fingerprint, speedup reported."""
    choice = backend or "both"
    names = (
        ("python", "vectorized") if choice == "both" else (choice,)
    )
    nodes = _lane_nodes(smoke)
    rows: Dict[str, Any] = {}
    digests: Dict[str, str] = {}
    for name in names:
        row, digest = _functional_propagate(smoke, name, nodes)
        rows[name] = _finalize_rate(row)
        digests[name] = digest
    record: Dict[str, Any] = {"nodes": nodes, "backends": rows}
    primary = rows[names[-1]]
    record["events"] = primary["events"]
    record["runs"] = primary["runs"]
    for key in ("wall_s", "wall_runs", "wall_min_s", "wall_median_s",
                "wall_stdev_s"):
        if key in primary:
            record[key] = primary[key]
    if len(names) == 2:
        record["equivalent"] = (
            digests["python"] == digests["vectorized"]
        )
        if not record["equivalent"]:
            raise BackendDivergenceError(
                "backend divergence: python and vectorized backends "
                "produced different marker state or reports on the "
                "propagate-vec workload",
                record=record,
            )
        python_rate = rows["python"]["events_per_sec"]
        vec_rate = rows["vectorized"]["events_per_sec"]
        if python_rate > 0 and vec_rate > 0:
            record["speedup"] = vec_rate / python_rate
    return record


def bench_faults(
    smoke: bool = False, backend: Optional[str] = None
) -> Dict[str, Any]:
    """Propagation under faults: reroutes, retries, and watchdogs."""
    from .machine import SnapMachine
    from .machine.config import MachineConfig
    from .machine.faults import FaultConfig
    from .network.generator import generate_hierarchy_kb

    repeats = 4 if smoke else 20
    network = generate_hierarchy_kb(360, branching=3)
    faults = FaultConfig(
        seed=11,
        failed_cluster_fraction=0.125,
        mu_loss_prob=0.1,
        link_fail_prob=0.15,
        transfer_corrupt_prob=0.08,
        scp_timeout_prob=0.02,
    )
    config = MachineConfig(num_clusters=16, mus_per_cluster=3, faults=faults)
    machine = SnapMachine(network, config)
    programs = _propagate_programs()
    machine.run(programs[0])
    events = 0
    walls: List[float] = []
    for _ in range(repeats):
        start = _start_clock()
        for program in programs:
            machine.reset_markers()
            events += machine.run(program).events_processed
        walls.append(time.perf_counter() - start)
    return {
        "events": events,
        **_wall_stats(walls),
        "runs": repeats * len(programs),
    }


def bench_overload(
    smoke: bool = False, backend: Optional[str] = None
) -> Dict[str, Any]:
    """Cancellation-heavy serving: watchdogs, hedges, shedding.

    Long deadlines relative to service time mean nearly every query's
    watchdog is scheduled far in the future and then cancelled on
    completion — the exact pattern that used to grow the event heap
    without bound under sustained traffic.
    """
    from .experiments.overload import build_queries, uncontended_profile
    from .host import HostConfig, Query, ServingHost
    from .isa import assemble
    from .network.generator import generate_hierarchy_kb

    count = 1500 if smoke else 20000
    network = generate_hierarchy_kb(240, branching=3)
    config = HostConfig(
        num_replicas=4,
        clusters_per_replica=4,
        mus_per_cluster=2,
        queue_capacity=16,
        shed_policy="reject-newest",
        max_attempts=2,
        fault_seed=3,
    )
    mean_service, p99 = uncontended_profile(network, config)
    sustainable = config.num_replicas / mean_service
    config = HostConfig(
        num_replicas=config.num_replicas,
        clusters_per_replica=config.clusters_per_replica,
        mus_per_cluster=config.mus_per_cluster,
        queue_capacity=config.queue_capacity,
        shed_policy=config.shed_policy,
        max_attempts=config.max_attempts,
        hedge_after_us=0.9 * p99,
        fault_seed=config.fault_seed,
    )
    # Deadlines 200x the p99: watchdogs are armed far out and almost
    # always cancelled, so dead entries dominate a naive event heap.
    queries = build_queries(count, 2.0 * sustainable, 200.0 * p99)
    host = ServingHost(network, config)
    # Pre-warm the nested-run cache so the clock sees only the serving
    # loop + DES kernel, not the (cached-once) machine simulations.
    from .experiments.overload import TEMPLATES

    for name, text in TEMPLATES:
        program = assemble(text)
        for replica in host.array.replicas:
            host.array.execute(
                replica, Query(query_id=-1, program=program, template=name)
            )
    start = _start_clock()
    report = host.serve(queries)
    wall = time.perf_counter() - start
    # One continuous serving run — the lane is a single measurement,
    # so the per-run wall list has one entry.
    return {
        "events": host.sim.events_processed,
        **_wall_stats([wall]),
        "queries": count,
        "served": report.served,
        "shed": report.shed,
    }


def bench_dispatch(
    smoke: bool = False, backend: Optional[str] = None
) -> Dict[str, Any]:
    """Instruction-dispatch micro-lane.

    Streams cheap marker-logic instructions through
    ``FunctionalEngine.execute`` on an 8-cluster KB: per-instruction
    work is a handful of word-wise numpy ops, so throughput here is
    dominated by dispatch overhead — the path that used to rebuild
    and linearly scan the primitive tables on every call.
    """
    from .core import FunctionalEngine
    from .isa import assemble
    from .network.generator import generate_hierarchy_kb

    repeats = 600 if smoke else 6000
    network = generate_hierarchy_kb(600, branching=3)
    engine = FunctionalEngine(
        network,
        num_clusters=8,
        backend=None if backend in (None, "both") else backend,
    )
    program = assemble(
        """
        SET-MARKER b0
        AND-MARKER b0 b1 b2
        OR-MARKER b0 b2 b3
        NOT-MARKER b3 b4
        CLEAR-MARKER b0
        """
    )
    instructions = list(program)
    engine.run(program)  # warm tables outside the clock
    events = 0
    walls: List[float] = []
    # Individual repeats are microseconds; time chunks of ~a tenth of
    # the stream so per-run walls are measurements, not clock reads.
    chunk = max(1, repeats // 10)
    done = 0
    while done < repeats:
        batch = min(chunk, repeats - done)
        start = _start_clock()
        for _ in range(batch):
            for instruction in instructions:
                engine.execute(instruction)
        walls.append(time.perf_counter() - start)
        events += batch * len(instructions)
        done += batch
    return {
        "events": events,
        **_wall_stats(walls),
        "runs": repeats,
        "instructions": len(instructions),
    }


_RUNNERS = {
    "propagate": bench_propagate,
    "propagate-vec": bench_propagate_vec,
    "faults": bench_faults,
    "overload": bench_overload,
    "dispatch": bench_dispatch,
}


def run_bench(
    workloads: Optional[List[str]] = None,
    smoke: bool = False,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the selected workloads; return the trajectory record."""
    selected = list(workloads) if workloads else list(WORKLOADS)
    unknown = [w for w in selected if w not in _RUNNERS]
    if unknown:
        raise KeyError(
            f"unknown workload(s) {unknown}; available: {list(WORKLOADS)}"
        )
    results: Dict[str, Any] = {}
    for name in selected:
        record = _RUNNERS[name](smoke=smoke, backend=backend)
        _finalize_rate(record)
        results[name] = record
    from .obs.perf.history import environment_fingerprint

    return {
        "bench": "snap1-hot-path",
        "smoke": smoke,
        "backend": backend,
        "python": platform.python_version(),
        "environment": environment_fingerprint(backend=backend, smoke=smoke),
        "workloads": results,
    }


def _print_row(name: str, row: Dict[str, Any]) -> None:
    tag = " [unreliable]" if row.get("unreliable") else ""
    print(
        f"{name:>13}: {row['events']:>9} events in "
        f"{row['wall_s']:.2f}s wall = {row['events_per_sec']:,.0f} ev/s{tag}"
    )
    for sub_name, sub in row.get("backends", {}).items():
        _print_row(f"{name}.{sub_name}", sub)
    if "speedup" in row:
        print(f"{name:>13}: vectorized speedup {row['speedup']:.1f}x "
              f"(equivalent={row.get('equivalent')})")


def main(argv=None) -> int:
    """CLI entry point for ``python -m repro bench``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="wall-clock events/sec on the simulator hot paths",
    )
    parser.add_argument(
        "workloads", nargs="*",
        help=f"workload ids to run (default: all of {WORKLOADS})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI smoke runs",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="propagation backend for engine lanes; 'both' runs the "
             "python and vectorized backends back to back and checks "
             "equivalence (propagate/propagate-vec lanes)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--snapshot", metavar="PATH",
        help="also write the deterministic fields (events/runs/queries/"
             "served/shed — never wall time) as a drift-gate snapshot "
             "for `python -m repro analyze --compare`",
    )
    parser.add_argument(
        "--history", default=DEFAULT_HISTORY, metavar="PATH",
        help="append one record per lane to this JSONL trajectory "
             f"(default: {DEFAULT_HISTORY}; gated by "
             "`python -m repro perf check`)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending to the bench history",
    )
    args = parser.parse_args(argv)
    try:
        record = run_bench(
            args.workloads or None, smoke=args.smoke, backend=args.backend
        )
    except BackendDivergenceError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        print(
            "bench: the propagate-vec equivalence gate failed — the "
            "vectorized backend no longer reproduces the golden model",
            file=sys.stderr,
        )
        return 1
    if args.snapshot:
        from .obs.analyze import make_snapshot

        deterministic = _scrub_nondeterministic(record["workloads"])
        snapshot = make_snapshot(deterministic, workload="bench")
        with open(args.snapshot, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.snapshot}")
    for name, row in record["workloads"].items():
        _print_row(name, row)
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    if not args.no_history:
        from .obs.perf.history import append_history

        appended = append_history(record, args.history)
        print(f"appended {appended} lane record(s) to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
