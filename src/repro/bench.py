"""Wall-clock benchmark harness for the simulator hot path.

Measures **events per second of wall-clock time** — the number of DES
kernel events processed divided by elapsed host time — on three
workloads chosen to stress the three hot paths of the system:

``propagate``
    Fan-out-heavy marker propagation on a healthy 16-cluster machine:
    repeated inheritance sweeps whose PROPAGATE instructions fan out to
    every cluster.  Stresses MU-pool job churn, ICN routing, and the
    event heap.
``faults``
    The same propagation under an aggressive fault pattern (offline
    clusters, dead links, transfer corruption): every message takes the
    ``route_avoiding`` path and retries/watchdogs exercise event
    cancellation.
``overload``
    The serving host under sustained overload: thousands of queries
    with deadline watchdogs, hedged retries, and admission shedding.
    Nested machine runs are pre-warmed into the replica cache so the
    measurement isolates the host serving loop and the DES kernel —
    the cancellation-heavy path that used to leak dead heap entries.

Because the simulator is deterministic, the event counts of a workload
never change between runs or code versions (the byte-identical-reports
guarantee); only the wall-clock denominator moves.  That makes
``events_per_sec`` a directly comparable trajectory across PRs —
``python -m repro bench`` writes it to ``BENCH_PERF.json``.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from typing import Any, Dict, List, Optional


def _start_clock() -> float:
    """Collect garbage left by setup/earlier workloads, then start
    timing.  Without this, measured wall time varies with workload run
    order (a prior workload's garbage gets collected inside the next
    one's timed region)."""
    gc.collect()
    return time.perf_counter()


#: Default output path (repo-root trajectory file, uploaded by CI).
DEFAULT_OUT = "BENCH_PERF.json"

#: Workload ids in report order.
WORKLOADS = ("propagate", "faults", "overload")


def _propagate_programs():
    from .isa import assemble

    texts = (
        """
        SEARCH-NODE thing b0
        PROPAGATE b0 b1 chain(inverse:is-a)
        COLLECT-NODE b1
        """,
        """
        SEARCH-NODE c1 b2
        PROPAGATE b2 b3 chain(inverse:is-a)
        COLLECT-NODE b3
        """,
        """
        SEARCH-NODE c2 b4
        PROPAGATE b4 b5 chain(inverse:is-a)
        COLLECT-NODE b5
        """,
    )
    return [assemble(text) for text in texts]


def bench_propagate(smoke: bool = False) -> Dict[str, Any]:
    """Fan-out-heavy propagation on a healthy machine."""
    from .machine import SnapMachine, snap1_16cluster
    from .network.generator import generate_hierarchy_kb

    repeats = 4 if smoke else 20
    network = generate_hierarchy_kb(360, branching=3)
    machine = SnapMachine(network, snap1_16cluster())
    programs = _propagate_programs()
    machine.run(programs[0])  # warm allocator/tables outside the clock
    events = 0
    start = _start_clock()
    for _ in range(repeats):
        for program in programs:
            machine.reset_markers()
            events += machine.run(program).events_processed
    wall = time.perf_counter() - start
    return {"events": events, "wall_s": wall, "runs": repeats * len(programs)}


def bench_faults(smoke: bool = False) -> Dict[str, Any]:
    """Propagation under faults: reroutes, retries, and watchdogs."""
    from .machine import SnapMachine
    from .machine.config import MachineConfig
    from .machine.faults import FaultConfig
    from .network.generator import generate_hierarchy_kb

    repeats = 4 if smoke else 20
    network = generate_hierarchy_kb(360, branching=3)
    faults = FaultConfig(
        seed=11,
        failed_cluster_fraction=0.125,
        mu_loss_prob=0.1,
        link_fail_prob=0.15,
        transfer_corrupt_prob=0.08,
        scp_timeout_prob=0.02,
    )
    config = MachineConfig(num_clusters=16, mus_per_cluster=3, faults=faults)
    machine = SnapMachine(network, config)
    programs = _propagate_programs()
    machine.run(programs[0])
    events = 0
    start = _start_clock()
    for _ in range(repeats):
        for program in programs:
            machine.reset_markers()
            events += machine.run(program).events_processed
    wall = time.perf_counter() - start
    return {"events": events, "wall_s": wall, "runs": repeats * len(programs)}


def bench_overload(smoke: bool = False) -> Dict[str, Any]:
    """Cancellation-heavy serving: watchdogs, hedges, shedding.

    Long deadlines relative to service time mean nearly every query's
    watchdog is scheduled far in the future and then cancelled on
    completion — the exact pattern that used to grow the event heap
    without bound under sustained traffic.
    """
    from .experiments.overload import build_queries, uncontended_profile
    from .host import HostConfig, Query, ServingHost
    from .isa import assemble
    from .network.generator import generate_hierarchy_kb

    count = 1500 if smoke else 20000
    network = generate_hierarchy_kb(240, branching=3)
    config = HostConfig(
        num_replicas=4,
        clusters_per_replica=4,
        mus_per_cluster=2,
        queue_capacity=16,
        shed_policy="reject-newest",
        max_attempts=2,
        fault_seed=3,
    )
    mean_service, p99 = uncontended_profile(network, config)
    sustainable = config.num_replicas / mean_service
    config = HostConfig(
        num_replicas=config.num_replicas,
        clusters_per_replica=config.clusters_per_replica,
        mus_per_cluster=config.mus_per_cluster,
        queue_capacity=config.queue_capacity,
        shed_policy=config.shed_policy,
        max_attempts=config.max_attempts,
        hedge_after_us=0.9 * p99,
        fault_seed=config.fault_seed,
    )
    # Deadlines 200x the p99: watchdogs are armed far out and almost
    # always cancelled, so dead entries dominate a naive event heap.
    queries = build_queries(count, 2.0 * sustainable, 200.0 * p99)
    host = ServingHost(network, config)
    # Pre-warm the nested-run cache so the clock sees only the serving
    # loop + DES kernel, not the (cached-once) machine simulations.
    from .experiments.overload import TEMPLATES

    for name, text in TEMPLATES:
        program = assemble(text)
        for replica in host.array.replicas:
            host.array.execute(
                replica, Query(query_id=-1, program=program, template=name)
            )
    start = _start_clock()
    report = host.serve(queries)
    wall = time.perf_counter() - start
    return {
        "events": host.sim.events_processed,
        "wall_s": wall,
        "queries": count,
        "served": report.served,
        "shed": report.shed,
    }


_RUNNERS = {
    "propagate": bench_propagate,
    "faults": bench_faults,
    "overload": bench_overload,
}


def run_bench(
    workloads: Optional[List[str]] = None, smoke: bool = False
) -> Dict[str, Any]:
    """Run the selected workloads; return the trajectory record."""
    selected = list(workloads) if workloads else list(WORKLOADS)
    unknown = [w for w in selected if w not in _RUNNERS]
    if unknown:
        raise KeyError(
            f"unknown workload(s) {unknown}; available: {list(WORKLOADS)}"
        )
    results: Dict[str, Any] = {}
    for name in selected:
        record = _RUNNERS[name](smoke=smoke)
        record["events_per_sec"] = (
            record["events"] / record["wall_s"] if record["wall_s"] > 0 else 0.0
        )
        results[name] = record
    return {
        "bench": "snap1-hot-path",
        "smoke": smoke,
        "python": platform.python_version(),
        "workloads": results,
    }


def main(argv=None) -> int:
    """CLI entry point for ``python -m repro bench``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="wall-clock events/sec on the simulator hot paths",
    )
    parser.add_argument(
        "workloads", nargs="*",
        help=f"workload ids to run (default: all of {WORKLOADS})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI smoke runs",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--snapshot", metavar="PATH",
        help="also write the deterministic fields (events/runs/queries/"
             "served/shed — never wall time) as a drift-gate snapshot "
             "for `python -m repro analyze --compare`",
    )
    args = parser.parse_args(argv)
    record = run_bench(args.workloads or None, smoke=args.smoke)
    if args.snapshot:
        from .obs.analyze import make_snapshot

        deterministic = {
            name: {
                key: value
                for key, value in row.items()
                if key not in ("wall_s", "events_per_sec")
            }
            for name, row in record["workloads"].items()
        }
        snapshot = make_snapshot(deterministic, workload="bench")
        with open(args.snapshot, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.snapshot}")
    for name, row in record["workloads"].items():
        print(
            f"{name:>10}: {row['events']:>9} events in "
            f"{row['wall_s']:.2f}s wall = {row['events_per_sec']:,.0f} ev/s"
        )
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
