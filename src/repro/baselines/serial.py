"""Serial (single-PE) baseline.

Executes SNAP programs with exact semantics on a single processor and
charges a serial cost model: every micro-operation the array would
distribute across clusters and marker units happens sequentially on
one PE, with no broadcast, communication, or synchronization overhead
(there is nothing to synchronize).

This is the reference point for all speedup figures (Figs. 16–18) and
the machine that produced the uniprocessor instruction profile of
Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..core.backends import PropagationBackend
from ..core.engine import ExecutionRecord, FunctionalEngine
from ..core.state import MachineState
from ..isa.instructions import Category
from ..isa.program import SnapProgram
from ..machine.cluster import work_service_time
from ..machine.config import Timing
from ..network.graph import SemanticNetwork


@dataclass
class SerialTrace:
    """Per-instruction timing on the serial machine."""

    index: int
    opcode: str
    category: str
    time_us: float
    alpha: int = 0
    max_hops: int = 0
    arrivals: int = 0
    result: Any = None


@dataclass
class SerialRunReport:
    """Aggregate of a serial run (compatible with experiment harness)."""

    total_time_us: float = 0.0
    traces: List[SerialTrace] = field(default_factory=list)
    category_busy_us: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time_ms(self) -> float:
        """Total simulated time in milliseconds."""
        return self.total_time_us / 1e3

    @property
    def total_time_s(self) -> float:
        """Total simulated time in seconds."""
        return self.total_time_us / 1e6

    def results(self) -> List[Any]:
        """Collected retrieval results, in program order."""
        return [t.result for t in self.traces if t.result is not None]

    def category_counts(self) -> Dict[str, int]:
        """Instruction counts per category."""
        counts: Dict[str, int] = {}
        for t in self.traces:
            counts[t.category] = counts.get(t.category, 0) + 1
        return counts

    def category_time_share(self) -> Dict[str, float]:
        """Fraction of execution time per instruction class (Fig. 6)."""
        total = sum(self.category_busy_us.values())
        if total == 0:
            return {}
        return {c: b / total for c, b in self.category_busy_us.items()}

    def category_frequency_share(self) -> Dict[str, float]:
        """Fraction of instruction count per class (Fig. 6)."""
        counts = self.category_counts()
        total = sum(counts.values())
        return {c: n / total for c, n in counts.items()}


class SerialMachine:
    """One processor, whole knowledge base, exact semantics."""

    def __init__(
        self,
        network: SemanticNetwork,
        timing: Optional[Timing] = None,
        backend: Union[None, str, PropagationBackend] = None,
    ) -> None:
        self.timing = timing or Timing()
        self.engine = FunctionalEngine(network, num_clusters=1,
                                       backend=backend)

    @property
    def state(self) -> MachineState:
        """The underlying shared MachineState."""
        return self.engine.state

    def instruction_time(self, record: ExecutionRecord) -> float:
        """Serial cost of one executed instruction.

        Decode plus the full work performed sequentially; every marker
        delivery pays the same task-dequeue overhead an MU pays (a
        serial PE processes arrivals from the identical worklist
        structure); retrieval adds the per-item host transfer cost.
        """
        t = self.timing.t_decode + work_service_time(record.work, self.timing)
        t += record.arrivals * self.timing.t_task_overhead
        if record.category == Category.COLLECT:
            items = len(record.result or ())
            t += self.timing.t_collect_cluster
            t += items * self.timing.t_collect_item
        return t

    def run(self, program: SnapProgram) -> SerialRunReport:
        """Execute a program; return serial timing report."""
        report = SerialRunReport()
        for index, instruction in enumerate(program):
            record = self.engine.execute(instruction)
            time_us = self.instruction_time(record)
            report.total_time_us += time_us
            report.category_busy_us[record.category] = (
                report.category_busy_us.get(record.category, 0.0) + time_us
            )
            report.traces.append(
                SerialTrace(
                    index=index,
                    opcode=record.opcode,
                    category=record.category,
                    time_us=time_us,
                    alpha=record.alpha,
                    max_hops=record.max_hops,
                    arrivals=record.arrivals,
                    result=record.result,
                )
            )
        return report
