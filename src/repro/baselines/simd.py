"""CM-2-style SIMD baseline (the Fig. 15 comparison machine).

The paper attributes the CM-2's inheritance performance profile to its
execution model: a very wide, flat SIMD array where every semantic
network node gets its own (bit-serial) processor, but where the
machine *"had to iterate between the controller and array after each
propagation step on the critical path"* (§IV).  Consequently:

* per-step cost is dominated by a large, constant controller
  round-trip (instruction sequencing over the front end);
* within a step, all active nodes process their links fully in
  parallel, so per-step array work is nearly independent of knowledge
  base size;
* total propagation time ≈ (path depth) × (round-trip + step work) —
  almost flat in KB size, but with a big constant.

SNAP-1, in contrast, has tiny per-step overhead (local MIMD control)
but only 32 clusters, so its time grows with nodes-per-cluster.  The
curves therefore start an order of magnitude apart (< 1 s vs < 10 s at
6.4 K nodes) and *"the lines will cross when larger knowledge bases
are used"* — exactly what the Fig. 15 experiment regenerates.

Semantics are exact: the same :class:`MachineState` primitives are
driven level-synchronously, which is precisely how a SIMD machine
would execute marker propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..core.backends import PropagationBackend
from ..core.state import MachineState
from ..isa.instructions import Category, Instruction, Propagate
from ..isa.program import SnapProgram
from ..core.engine import FunctionalEngine
from ..network.graph import SemanticNetwork


@dataclass(frozen=True)
class SimdTiming:
    """CM-2-style cost parameters, in microseconds.

    Defaults are calibrated to the paper's report of CM-2 inheritance
    runs under 10 s to depth ~7 on a 6.4 K-node hierarchy [2].
    """

    #: Controller↔array round-trip per propagation step (the killer).
    t_step_roundtrip: float = 100_000.0
    #: Bit-serial link processing within a step (parallel across
    #: nodes, so charged once per step per relation slot position).
    t_step_per_slot: float = 2_000.0
    #: Flat cost of any non-propagate SNAP instruction (global SIMD op).
    t_instruction: float = 10_000.0
    #: Per collected item (front-end retrieval).
    t_collect_item: float = 100.0


@dataclass
class SimdTrace:
    """Per-instruction timing on the SIMD machine."""
    index: int
    opcode: str
    category: str
    time_us: float
    steps: int = 0
    result: Any = None


@dataclass
class SimdRunReport:
    """Aggregate of a SIMD run."""
    total_time_us: float = 0.0
    traces: List[SimdTrace] = field(default_factory=list)

    @property
    def total_time_ms(self) -> float:
        """Total simulated time in milliseconds."""
        return self.total_time_us / 1e3

    @property
    def total_time_s(self) -> float:
        """Total simulated time in seconds."""
        return self.total_time_us / 1e6

    def results(self) -> List[Any]:
        """Collected retrieval results, in program order."""
        return [t.result for t in self.traces if t.result is not None]

    def total_steps(self) -> int:
        """Total controller-iterated propagation steps."""
        return sum(t.steps for t in self.traces)


class SimdMachine:
    """Level-synchronous SIMD execution of SNAP programs."""

    def __init__(
        self,
        network: SemanticNetwork,
        timing: Optional[SimdTiming] = None,
        backend: Union[None, str, PropagationBackend] = None,
    ) -> None:
        self.timing = timing or SimdTiming()
        # Single partition: the SIMD array is one flat address space.
        self.engine = FunctionalEngine(network, num_clusters=1,
                                       backend=backend)

    @property
    def state(self) -> MachineState:
        """The underlying shared MachineState."""
        return self.engine.state

    def run(self, program: SnapProgram) -> SimdRunReport:
        """Run to completion; returns the result/report."""
        report = SimdRunReport()
        for index, instruction in enumerate(program):
            if isinstance(instruction, Propagate):
                steps, time_us = self._propagate(instruction)
                trace = SimdTrace(
                    index, instruction.opcode, instruction.category,
                    time_us, steps=steps,
                )
            else:
                record = self.engine.execute(instruction)
                time_us = self.timing.t_instruction
                if record.category == Category.COLLECT:
                    time_us += len(record.result or ()) * (
                        self.timing.t_collect_item
                    )
                trace = SimdTrace(
                    index, record.opcode, record.category, time_us,
                    result=record.result,
                )
            report.total_time_us += trace.time_us
            report.traces.append(trace)
        return report

    def _propagate(self, instruction: Propagate) -> tuple:
        """Level-synchronous propagation: one controller round-trip per
        step, array work parallel within the step.

        Execution goes through the engine's propagation backend, which
        is wave-synchronous by construction; the FIFO golden model is
        level-synchronous too, so ``max_hops`` is exactly the number of
        controller-iterated steps the SIMD array would take."""
        record = self.engine.execute(instruction)
        steps = record.max_hops
        # Per-step cost: the controller round-trip dominates; array
        # work is parallel across the whole frontier, so only the
        # worst per-node slot scan matters, charged bit-serially.
        step_cost = (
            self.timing.t_step_roundtrip
            + 16 * self.timing.t_step_per_slot
        )
        # The seed step counts as a round-trip too.
        total = (steps + 1) * step_cost
        return steps, total
