"""Comparison machines: serial single-PE and CM-2-style SIMD.

Both baselines execute the identical instruction semantics as the
SNAP-1 simulator (shared :class:`~repro.core.state.MachineState`
primitives) under their own cost models, so every comparison in the
evaluation is apples-to-apples on results and differs only in the
modeled architecture.
"""

from .serial import SerialMachine, SerialRunReport, SerialTrace
from .simd import SimdMachine, SimdRunReport, SimdTiming, SimdTrace

__all__ = [
    "SerialMachine",
    "SerialRunReport",
    "SerialTrace",
    "SimdMachine",
    "SimdRunReport",
    "SimdTiming",
    "SimdTrace",
]
