"""Measurement analysis: profiles, speedup, traffic, overheads, α/β."""

from .profiles import (
    CATEGORY_ORDER,
    Profile,
    format_profile_table,
    profile_from_parse_results,
    profile_from_report,
)
from .speedup import (
    SpeedupCurve,
    SweepPoint,
    format_speedup_table,
    knee,
)
from .traffic import (
    TrafficSummary,
    format_traffic_series,
    summarize_sync_stats,
    summarize_traffic,
    traffic_histogram,
)
from .overhead import (
    COMPONENTS,
    OverheadSweep,
    format_overhead_table,
)
from .parallelism import (
    ParallelismStats,
    measure_alpha,
    measure_beta,
    parallelism_stats,
)
from .timeline import (
    cluster_activity,
    instruction_gantt,
    overlap_factor,
    render_report_timeline,
)

__all__ = [
    "CATEGORY_ORDER", "Profile", "format_profile_table",
    "profile_from_parse_results", "profile_from_report",
    "SpeedupCurve", "SweepPoint", "format_speedup_table", "knee",
    "TrafficSummary", "format_traffic_series", "summarize_sync_stats",
    "summarize_traffic", "traffic_histogram",
    "COMPONENTS", "OverheadSweep", "format_overhead_table",
    "ParallelismStats", "measure_alpha", "measure_beta",
    "parallelism_stats",
    "cluster_activity", "instruction_gantt", "overlap_factor",
    "render_report_timeline",
]
