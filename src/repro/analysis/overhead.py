"""Parallel-overhead decomposition (Fig. 21).

The four components of parallel overhead in a marker-propagation
system (§IV *Processing Overhead*):

1. **instruction broadcast** time (configuration phase) — constant,
   thanks to the global bus;
2. **message communication** time (propagation phase) — grows
   ~O(log N) with N clusters (hypercube hop count);
3. **barrier synchronization** time (propagation → accumulation
   transition) — proportional to processor count, small slope;
4. **result collection** time (accumulation phase) — proportional to
   cluster count and the dominant overhead.

These helpers collect the per-run :class:`OverheadBreakdown` across a
cluster sweep and verify/render the scaling claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..machine.report import MachineRunReport, OverheadBreakdown

COMPONENTS = ("broadcast", "communication", "synchronization", "collection")


@dataclass
class OverheadSweep:
    """Overhead components measured across machine sizes."""

    #: (clusters, processors, breakdown) per configuration.
    rows: List[Tuple[int, int, OverheadBreakdown]] = field(
        default_factory=list
    )

    def add(self, clusters: int, processors: int,
            breakdown: OverheadBreakdown) -> None:
        """Append one entry."""
        self.rows.append((clusters, processors, breakdown))

    def series(self, component: str) -> List[Tuple[int, float]]:
        """(clusters, µs) for one overhead component."""
        return [
            (clusters, getattr(breakdown, component))
            for clusters, _pes, breakdown in sorted(self.rows)
        ]

    def dominant_component(self) -> str:
        """Component with the largest overhead at the largest machine."""
        _c, _p, breakdown = max(self.rows, key=lambda r: r[0])
        return max(COMPONENTS, key=lambda comp: getattr(breakdown, comp))

    # -- scaling-shape checks (used by tests and EXPERIMENTS.md) --------
    def growth_ratio(self, component: str) -> float:
        """Overhead at largest machine / overhead at smallest."""
        series = self.series(component)
        if len(series) < 2 or series[0][1] == 0:
            return 1.0
        return series[-1][1] / series[0][1]

    def is_roughly_constant(self, component: str, tolerance: float = 2.0) -> bool:
        """Whether the component grows less than `tolerance` overall."""
        return self.growth_ratio(component) <= tolerance

    def is_sublinear(self, component: str) -> bool:
        """Grows slower than cluster count (the O(log N) claim)."""
        series = self.series(component)
        if len(series) < 2:
            return True
        c0, v0 = series[0]
        c1, v1 = series[-1]
        if v0 <= 0:
            return True
        cluster_ratio = c1 / c0
        return (v1 / v0) < cluster_ratio


def format_overhead_table(sweep: OverheadSweep) -> str:
    """Aligned table: one row per machine size, one column per component."""
    lines = [
        f"{'clusters':>8} {'PEs':>5} " + " ".join(
            f"{c:>16}" for c in COMPONENTS
        ) + f" {'total':>16}"
    ]
    for clusters, pes, breakdown in sorted(sweep.rows):
        row = f"{clusters:>8} {pes:>5} "
        row += " ".join(
            f"{getattr(breakdown, c):>16.1f}" for c in COMPONENTS
        )
        row += f" {breakdown.total():>16.1f}"
        lines.append(row)
    return "\n".join(lines)
