"""Instruction-profile analysis (Figs. 6, 18, 19, 20).

Aggregates per-category instruction counts and execution time across
runs and renders the relative-frequency / relative-time comparison of
Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..isa.instructions import Category

#: Display order of instruction classes in the paper's figures.
CATEGORY_ORDER = (
    Category.PROPAGATE,
    Category.BOOLEAN,
    Category.SETCLEAR,
    Category.SEARCH,
    Category.COLLECT,
    Category.MARKER_MAINT,
    Category.MAINTENANCE,
)


@dataclass
class Profile:
    """Counts and time per instruction category."""

    counts: Dict[str, int] = field(default_factory=dict)
    time_us: Dict[str, float] = field(default_factory=dict)

    def add_counts(self, counts: Mapping[str, int]) -> None:
        """Accumulate instruction counts per category."""
        for category, n in counts.items():
            self.counts[category] = self.counts.get(category, 0) + n

    def add_time(self, time_us: Mapping[str, float]) -> None:
        """Accumulate per-category time."""
        for category, t in time_us.items():
            self.time_us[category] = self.time_us.get(category, 0.0) + t

    def merge(self, other: "Profile") -> "Profile":
        """Merge another instance into this one; returns self."""
        self.add_counts(other.counts)
        self.add_time(other.time_us)
        return self

    # -- shares -----------------------------------------------------------
    def frequency_share(self) -> Dict[str, float]:
        """Fraction of instruction count per category."""
        total = sum(self.counts.values())
        if not total:
            return {}
        return {c: n / total for c, n in self.counts.items()}

    def time_share(self) -> Dict[str, float]:
        """Fraction of execution time per category."""
        total = sum(self.time_us.values())
        if not total:
            return {}
        return {c: t / total for c, t in self.time_us.items()}

    @property
    def total_instructions(self) -> int:
        """Total instruction count across categories."""
        return sum(self.counts.values())

    @property
    def total_time_us(self) -> float:
        """Total time across categories / components, in microseconds."""
        return sum(self.time_us.values())


def profile_from_report(report: Any) -> Profile:
    """Build a profile from any run report exposing traces/busy time."""
    profile = Profile()
    counts: Dict[str, int] = {}
    for trace in report.traces:
        counts[trace.category] = counts.get(trace.category, 0) + 1
    profile.add_counts(counts)
    busy = getattr(report, "category_busy_us", None)
    if busy:
        profile.add_time(busy)
    else:  # serial traces carry per-instruction time directly
        time_us: Dict[str, float] = {}
        for trace in report.traces:
            time_us[trace.category] = (
                time_us.get(trace.category, 0.0) + trace.time_us
            )
        profile.add_time(time_us)
    return profile


def profile_from_parse_results(results: Iterable[Any]) -> Profile:
    """Aggregate parser :class:`ParseResult` objects into one profile."""
    profile = Profile()
    for result in results:
        profile.add_counts(result.category_counts)
        profile.add_time(result.category_time_us)
    return profile


def category_latency(reports: Iterable[Any]) -> Dict[str, float]:
    """Per-category sum of instruction *latencies* across reports.

    Latency (issue→complete elapsed time) is what Figs. 18/19 plot:
    unlike busy time it shrinks as clusters are added, because each
    instruction's work is spread over more marker units.  Serial
    traces expose ``time_us`` directly; machine traces expose
    ``latency``.
    """
    out: Dict[str, float] = {}
    for report in reports:
        for trace in report.traces:
            latency = getattr(trace, "time_us", None)
            if latency is None:
                latency = trace.latency
            out[trace.category] = out.get(trace.category, 0.0) + latency
    return out


def format_profile_table(profile: Profile, title: str = "") -> str:
    """Render the Fig. 6 comparison as an aligned text table."""
    freq = profile.frequency_share()
    time = profile.time_share()
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'category':<14} {'count':>8} {'freq %':>8} "
        f"{'time us':>12} {'time %':>8}"
    )
    for category in CATEGORY_ORDER:
        if category not in profile.counts and category not in profile.time_us:
            continue
        lines.append(
            f"{category:<14} {profile.counts.get(category, 0):>8} "
            f"{100 * freq.get(category, 0.0):>7.1f}% "
            f"{profile.time_us.get(category, 0.0):>12.1f} "
            f"{100 * time.get(category, 0.0):>7.1f}%"
        )
    lines.append(
        f"{'total':<14} {profile.total_instructions:>8} "
        f"{'':>8} {profile.total_time_us:>12.1f}"
    )
    return "\n".join(lines)
