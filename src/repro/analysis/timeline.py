"""Machine-activity timelines from the performance-collection network.

The paper's instrumentation streams timestamped event records to a
central collection board "for analysis or transfer to mass storage"
(§III-B).  This module is that analysis: text-rendered Gantt charts of
instruction overlap (where β-parallelism is visible as stacked bars)
and per-cluster activity strips built from the monitoring records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..machine.perfnet import EventCode, PerfRecord
from ..machine.report import InstructionTrace, MachineRunReport


def instruction_gantt(
    traces: Sequence[InstructionTrace],
    width: int = 64,
    max_rows: int = 40,
) -> str:
    """Render instruction issue→complete spans as a text Gantt chart.

    Overlapping PROPAGATE bars are the visual signature of
    β-parallelism; a bar starting only after another ends shows a
    marker-dependency barrier.
    """
    if not traces:
        return "(no instructions)"
    end = max(t.complete_time for t in traces)
    start = min(t.issue_time for t in traces)
    span = max(end - start, 1e-9)
    lines = [
        f"{'#':>3} {'opcode':<18} "
        f"|{'time -> (total ' + f'{span:.0f} us)':<{width}}|"
    ]
    for trace in traces[:max_rows]:
        left = int((trace.issue_time - start) / span * width)
        right = max(left + 1, int((trace.complete_time - start) / span * width))
        bar = " " * left + "#" * (right - left)
        lines.append(
            f"{trace.index:>3} {trace.opcode:<18} |{bar:<{width}}|"
        )
    if len(traces) > max_rows:
        lines.append(f"... {len(traces) - max_rows} more instructions")
    return "\n".join(lines)


#: Event codes that count as "activity" for a source row.
_ACTIVITY_CODES = {
    EventCode.TASK_START,
    EventCode.TASK_END,
    EventCode.MSG_SEND,
    EventCode.MSG_RECV,
    EventCode.MSG_FORWARD,
}


def cluster_activity(
    records: Iterable[PerfRecord],
    total_time_us: float,
    width: int = 64,
) -> str:
    """Per-cluster activity strips from monitoring records.

    Each row is a cluster (row ``ctl`` is the controller, source -1);
    a ``#`` marks a time bucket with at least one monitored event.
    """
    records = list(records)
    if not records or total_time_us <= 0:
        return "(no monitoring records)"
    buckets: Dict[int, List[bool]] = {}
    for record in records:
        if record.code not in _ACTIVITY_CODES and record.source != -1:
            continue
        row = buckets.setdefault(record.source, [False] * width)
        index = min(width - 1, int(record.time / total_time_us * width))
        row[index] = True
    lines = []
    for source in sorted(buckets):
        label = "ctl" if source == -1 else f"c{source:02d}"
        strip = "".join("#" if b else "." for b in buckets[source])
        lines.append(f"{label:>4} |{strip}|")
    return "\n".join(lines)


def overlap_factor(traces: Sequence[InstructionTrace]) -> float:
    """Mean number of simultaneously in-flight instructions.

    Computed as Σ latencies / makespan — the measured, dynamic
    counterpart of the static β analysis.
    """
    if not traces:
        return 0.0
    total_latency = sum(t.latency for t in traces)
    start = min(t.issue_time for t in traces)
    end = max(t.complete_time for t in traces)
    makespan = end - start
    if makespan <= 0:
        return 0.0
    return total_latency / makespan


def render_report_timeline(report: MachineRunReport, width: int = 64) -> str:
    """Both views for one run report."""
    parts = [
        "instruction overlap (Gantt):",
        instruction_gantt(report.traces, width=width),
    ]
    if report.perf_records:
        parts += [
            "",
            "cluster activity (perf-collection network):",
            cluster_activity(
                report.perf_records, report.total_time_us, width=width
            ),
        ]
    parts.append(
        f"\nmean in-flight instructions: {overlap_factor(report.traces):.2f}"
    )
    return "\n".join(parts)
