"""Marker-traffic analysis (Fig. 8) and ICN statistics.

Fig. 8 plots the number of marker activation messages transmitted at
each barrier-synchronization point during a parse: bursty, with a mean
around 11.5 and bursts over 30.  These helpers summarize the
:class:`~repro.machine.sync.SyncStats` series and render the figure as
a text histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..machine.sync import SyncStats


@dataclass
class TrafficSummary:
    """Headline statistics of a messages-per-sync-point series."""

    sync_points: int
    total_messages: int
    mean: float
    peak: int
    bursts_over_30: int

    @property
    def bursty(self) -> bool:
        """Bursts well above the mean, as the paper observes."""
        return self.peak > 2 * max(self.mean, 1.0)


def summarize_traffic(series: Sequence[int]) -> TrafficSummary:
    """Summarize a messages-per-sync series."""
    if not series:
        return TrafficSummary(0, 0, 0.0, 0, 0)
    return TrafficSummary(
        sync_points=len(series),
        total_messages=sum(series),
        mean=sum(series) / len(series),
        peak=max(series),
        bursts_over_30=sum(1 for m in series if m > 30),
    )


def summarize_sync_stats(stats: SyncStats) -> TrafficSummary:
    """Summarize a SyncStats object's message series."""
    return summarize_traffic(stats.messages_per_sync())


def traffic_histogram(
    series: Sequence[int], bucket: int = 5
) -> Dict[str, int]:
    """Histogram of per-sync message counts in ``bucket``-wide bins."""
    hist: Dict[str, int] = {}
    for m in series:
        low = (m // bucket) * bucket
        key = f"{low}-{low + bucket - 1}"
        hist[key] = hist.get(key, 0) + 1
    return hist


def format_traffic_series(
    series: Sequence[int], width: int = 60, title: str = ""
) -> str:
    """Render the Fig. 8 series as a horizontal text bar chart."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        return "\n".join(lines + ["(no sync points)"])
    peak = max(max(series), 1)
    lines.append(f"{'sync#':>6} {'msgs':>5}  activity")
    for i, m in enumerate(series):
        bar = "#" * max(1 if m else 0, round(m / peak * width))
        lines.append(f"{i:>6} {m:>5}  {bar}")
    summary = summarize_traffic(series)
    lines.append(
        f"mean={summary.mean:.2f} msgs/sync, peak={summary.peak}, "
        f"bursts>30: {summary.bursts_over_30}"
    )
    return "\n".join(lines)
