"""α / β parallelism measurement (§II-C).

* **α-parallelism** (intra-propagation): the number of nodes activated
  simultaneously by one PROPAGATE — measured per instruction by the
  engines; the paper observed 10–1000 depending on path length/breadth.
* **β-parallelism** (inter-propagation): the number of overlapped
  PROPAGATE statements with no marker data dependencies — a static
  property of the program, computed by
  :meth:`repro.isa.program.SnapProgram.beta_profile`; the paper
  measured β ranging 2.8–6 (PASS) and 2.3–5 (DMSNAP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence

from ..isa.program import SnapProgram


@dataclass
class ParallelismStats:
    """α and β statistics for a workload."""

    alpha_min: int
    alpha_max: int
    alpha_mean: float
    beta_min: float
    beta_max: float
    beta_mean: float
    propagates: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (JSON-friendly)."""
        return {
            "alpha_min": self.alpha_min,
            "alpha_max": self.alpha_max,
            "alpha_mean": round(self.alpha_mean, 1),
            "beta_min": self.beta_min,
            "beta_max": self.beta_max,
            "beta_mean": round(self.beta_mean, 2),
            "propagates": self.propagates,
        }


def measure_alpha(reports: Iterable[Any]) -> List[int]:
    """α per PROPAGATE across run reports (machine or serial)."""
    alphas: List[int] = []
    for report in reports:
        for trace in report.traces:
            if trace.category == "propagate":
                alphas.append(trace.alpha)
    return alphas


def measure_beta(programs: Iterable[SnapProgram]) -> List[int]:
    """β overlap-run sizes across program segments."""
    betas: List[int] = []
    for program in programs:
        betas.extend(program.beta_profile())
    return betas


def parallelism_stats(
    reports: Sequence[Any], programs: Sequence[SnapProgram]
) -> ParallelismStats:
    """Combined α/β measurement for a workload."""
    measured = measure_alpha(reports)
    alphas = measured or [0]
    betas = [float(b) for b in measure_beta(programs)] or [0.0]
    return ParallelismStats(
        alpha_min=min(alphas),
        alpha_max=max(alphas),
        alpha_mean=sum(alphas) / len(alphas),
        beta_min=min(betas),
        beta_max=max(betas),
        beta_mean=sum(betas) / len(betas),
        propagates=len(measured),
    )
