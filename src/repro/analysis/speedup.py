"""Speedup analysis (Figs. 16–18).

Speedup is execution time on the reference (serial / smallest)
configuration divided by time on the configuration under test, for an
identical workload.  These helpers organize sweep results into the
series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SweepPoint:
    """One measured configuration in a speedup sweep."""

    processors: int
    clusters: int
    time_us: float
    label: str = ""


@dataclass
class SpeedupCurve:
    """A labeled series of speedup vs processor count."""

    label: str
    points: List[SweepPoint] = field(default_factory=list)

    def add(self, point: SweepPoint) -> None:
        """Append one entry."""
        self.points.append(point)

    @property
    def baseline_time_us(self) -> float:
        """Time on the smallest configuration (the 1-PE reference)."""
        if not self.points:
            raise ValueError("empty speedup curve")
        return min(self.points, key=lambda p: p.processors).time_us

    def speedups(self) -> List[Tuple[int, float]]:
        """(processors, speedup) pairs, ascending in processors."""
        base = self.baseline_time_us
        return [
            (p.processors, base / p.time_us if p.time_us else 0.0)
            for p in sorted(self.points, key=lambda q: q.processors)
        ]

    def speedup_at(self, processors: int) -> Optional[float]:
        """Speedup at an exact processor count (None if absent)."""
        for p, s in self.speedups():
            if p == processors:
                return s
        return None

    def max_speedup(self) -> float:
        """Largest speedup across the curve."""
        return max((s for _p, s in self.speedups()), default=0.0)

    def efficiency(self) -> List[Tuple[int, float]]:
        """(processors, speedup/processors) — parallel efficiency."""
        return [(p, s / p) for p, s in self.speedups() if p > 0]


def knee(curve: SpeedupCurve, threshold: float = 0.05) -> Optional[int]:
    """Processor count beyond which marginal speedup falls below
    ``threshold`` per added processor (saturation point, Fig. 17)."""
    pts = curve.speedups()
    for (p0, s0), (p1, s1) in zip(pts, pts[1:]):
        if p1 == p0:
            continue
        if (s1 - s0) / (p1 - p0) < threshold:
            return p0
    return None


def format_speedup_table(
    curves: Sequence[SpeedupCurve], x_label: str = "PEs"
) -> str:
    """Aligned text table with one column per curve."""
    processors = sorted(
        {p for curve in curves for p, _s in curve.speedups()}
    )
    header = f"{x_label:>6} " + " ".join(
        f"{curve.label:>14}" for curve in curves
    )
    lines = [header]
    lookup = [dict(curve.speedups()) for curve in curves]
    for p in processors:
        row = f"{p:>6} "
        for table in lookup:
            value = table.get(p)
            row += f"{value:>14.2f}" if value is not None else f"{'-':>14}"
        lines.append(row)
    return "\n".join(lines)
