"""MUC-4-style evaluation sentences (paper Table III).

The paper parses newswire sentences from the MUC-4 "terrorism in Latin
America" corpus; the originals are not reprinted in the paper, so this
module provides four newswire-style sentences (S1–S4) of increasing
length built from the domain vocabulary, preserving the property the
paper measures: *"the overall execution time is roughly proportional
to the sentence length in words"* (§IV).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Table III stand-ins: id -> sentence.  Lengths step roughly evenly
#: so the length-vs-time proportionality is measurable.
MUC4_SENTENCES: Tuple[Tuple[str, str], ...] = (
    ("S1", "terrorists attacked the mayor in bogota yesterday"),
    ("S2",
     "guerrillas bombed the embassy of colombia and killed two civilians"),
    ("S3",
     "several armed men kidnapped the ambassador near the residence "
     "in lima on monday morning"),
    ("S4",
     "the army reported unidentified terrorists exploded a powerful bomb "
     "against the pipeline and damaged several vehicles in medellin "
     "yesterday night"),
)


def sentences() -> List[str]:
    """The sentence texts, in Table III order."""
    return [text for _sid, text in MUC4_SENTENCES]


def sentence_ids() -> List[str]:
    """Sentence ids (S1..S4), in Table III order."""
    return [sid for sid, _text in MUC4_SENTENCES]


def by_id() -> Dict[str, str]:
    """Mapping of sentence id to text."""
    return dict(MUC4_SENTENCES)


#: A longer newswire passage for bulk-text-understanding runs
#: ("we have processed tens of pages of newswire text", §I-B).
NEWSWIRE_PASSAGE: Tuple[str, ...] = (
    "terrorists bombed the embassy in bogota",
    "the explosion damaged several vehicles near the residence",
    "guerrillas claimed responsibility for the attack",
    "the army reported three casualties in the city",
    "unidentified men kidnapped a judge in medellin yesterday",
    "police found weapons and dynamite in the neighborhood",
    "the president announced a statement against the guerrillas",
    "soldiers attacked the rebels near the bridge on monday",
    "the attack occurred in downtown lima this morning",
    "journalists saw the damage at the headquarters",
)
