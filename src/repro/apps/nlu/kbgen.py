"""Knowledge-base generator for the newswire NLU domain.

Builds the "terrorism in Latin America" knowledge base at a requested
size.  The core is hand-built: a concept-type hierarchy covering the
domain's actors, acts, targets, places and times; syntactic
categories; and the basic concept sequences (attack-event,
kidnap-event, ... plus the paper's Fig. 1 seeing-event) with auxiliary
time-case and location-case sequences.  The lexical layer comes from
:mod:`repro.apps.nlu.lexicon`.

To reach the evaluation sizes (the paper measures 5 K- and 9 K-node
KBs, and the full application uses ~12 K nodes / 48 K links), the core
is padded with *filler knowledge* of the published layer mix — extra
hierarchy concepts and extra concept sequences whose elements
constrain on the **core** classes.  Filler sequences therefore
activate during parsing and must be cancelled during multiple-
hypothesis resolution, which is exactly why the paper's propagation
count grows with KB size (Fig. 20).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...network.builder import KnowledgeBaseBuilder
from ...network.graph import SemanticNetwork
from ...network.node import Color
from .lexicon import CORE_VOCABULARY, Lexicon

#: Concept-type hierarchy of the domain: (class, parents).
DOMAIN_HIERARCHY: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    # The hierarchy is deliberately deep (7-9 levels from the lexical
    # layer to the root): the paper reports maximum propagation path
    # distances of 10-15 steps through its knowledge base (§IV).
    ("thing", ()),
    ("living-thing", ("thing",)),
    ("organism", ("living-thing",)),
    ("animate", ("organism",)),
    ("person", ("animate",)),
    ("human", ("person",)),
    ("combatant", ("human",)),
    ("terrorist", ("combatant",)),
    ("guerrilla", ("combatant",)),
    ("military", ("combatant",)),
    ("public-figure", ("human",)),
    ("official", ("public-figure",)),
    ("civilian", ("human",)),
    ("social-entity", ("thing",)),
    ("organization", ("social-entity",)),
    ("authority", ("organization",)),
    ("physical", ("thing",)),
    ("physical-object", ("physical",)),
    ("artifact", ("physical-object",)),
    ("target", ("artifact",)),
    ("structure", ("target",)),
    ("building", ("structure",)),
    ("infrastructure", ("structure",)),
    ("conveyance", ("target",)),
    ("vehicle", ("conveyance",)),
    ("device", ("artifact",)),
    ("weapon", ("device",)),
    ("region", ("physical",)),
    ("place", ("region",)),
    ("settlement", ("place",)),
    ("city", ("settlement",)),
    ("country", ("place",)),
    ("abstraction", ("thing",)),
    ("time-expr", ("abstraction",)),
    ("action", ("abstraction",)),
    ("event-noun", ("action",)),
    ("violent-act", ("event-noun",)),
    ("attack-act", ("violent-act",)),
    ("kidnap-act", ("violent-act",)),
    ("kill-act", ("violent-act",)),
    ("speech-act", ("event-noun",)),
    ("statement-act", ("speech-act",)),
    ("perception-act", ("event-noun",)),
    ("see-act", ("perception-act",)),
    ("happen-act", ("event-noun",)),
    ("communication", ("abstraction",)),
    ("effect", ("abstraction",)),
    ("entity", ("thing",)),
)

#: Syntactic categories (middle layer of Fig. 1).
DOMAIN_SYNTAX: Tuple[str, ...] = (
    "noun", "verb", "determiner", "adjective", "adverb",
    "preposition", "conjunction", "noun-phrase", "verb-phrase",
    "prep-phrase",
)

#: Basic concept sequences: (name, cost, ((element, constraints), ...)).
#: Lower cost = preferred reading; costs are the link weights markers
#: accumulate, so the winning hypothesis is the cheapest completed one.
CORE_SEQUENCES: Tuple[Tuple[str, float, Tuple[Tuple[str, Tuple[str, ...]], ...]], ...] = (
    ("attack-event", 1.0, (
        ("attacker", ("human",)),
        ("attack", ("attack-act",)),
        ("victim", ("target", "human")),
    )),
    ("bombing-event", 1.05, (
        ("agent", ("human",)),
        ("bombing", ("attack-act",)),
        ("device", ("weapon",)),
    )),
    ("kill-event", 1.1, (
        ("killer", ("human",)),
        ("kill", ("kill-act",)),
        ("victim", ("human",)),
    )),
    ("kidnap-event", 1.2, (
        ("kidnapper", ("human",)),
        ("kidnap", ("kidnap-act",)),
        ("victim", ("human",)),
    )),
    ("statement-event", 1.3, (
        ("speaker", ("human",)),
        ("statement", ("statement-act",)),
        ("content", ("communication",)),
    )),
    ("casualty-report", 1.25, (
        ("reporter", ("human", "organization")),
        ("report", ("statement-act",)),
        ("effect", ("effect",)),
    )),
    ("damage-event", 1.15, (
        ("cause", ("event-noun",)),
        ("damage", ("attack-act",)),
        ("damaged", ("target",)),
    )),
    ("discovery-event", 1.35, (
        ("finder", ("human", "organization")),
        ("find", ("see-act",)),
        ("found", ("physical",)),
    )),
    # The paper's Fig. 1 example.
    ("seeing-event", 1.4, (
        ("experiencer", ("animate", "noun-phrase")),
        ("see", ("see-act",)),
        ("object", ("thing",)),
    )),
    ("happening-event", 1.5, (
        ("event", ("event-noun",)),
        ("happen", ("happen-act",)),
        ("location", ("place",)),
    )),
)

#: Auxiliary concept sequences (optional constituents of Fig. 1:
#: "the time-case concept sequence is combined with a ... basic
#: concept sequence to indicate when it happened").
AUX_SEQUENCES: Tuple[Tuple[str, float, Tuple[Tuple[str, Tuple[str, ...]], ...], str], ...] = (
    ("time-case", 0.5, (("when", ("time-expr",)),), "attack-event"),
    ("location-case", 0.5, (("where", ("place",)),), "attack-event"),
)

#: Core classes filler sequences may constrain on — this is what makes
#: them activate (and need cancelling) on real sentences.
FILLER_CONSTRAINT_POOL: Tuple[str, ...] = (
    "human", "target", "place", "attack-act", "weapon", "organization",
    "time-expr", "event-noun", "thing",
)


@dataclass
class DomainKB:
    """The built knowledge base plus its application-level indexes."""

    network: SemanticNetwork
    lexicon: Lexicon
    #: Names of basic concept-sequence roots (core + filler).
    cs_roots: List[str]
    #: Names of the hand-built core sequences.
    core_roots: List[str]
    target_nodes: int = 0

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.network.num_nodes

    @property
    def num_links(self) -> int:
        """Number of links."""
        return self.network.num_links

    def has_word(self, word: str) -> bool:
        """Whether the word has a lexical node in this KB."""
        return f"w:{word.lower()}" in self.network


def build_domain_kb(
    total_nodes: int = 5000,
    seed: int = 11,
    filler_constraint_bias: float = 0.35,
) -> DomainKB:
    """Build the newswire KB padded to approximately ``total_nodes``.

    ``filler_constraint_bias`` is the probability that a filler
    concept-sequence element constrains on a *core* class (making it a
    competing hypothesis on real input) rather than on inert filler
    classes.
    """
    rng = random.Random(seed)
    builder = KnowledgeBaseBuilder()
    lexicon = Lexicon()

    # --- core hierarchy + syntax ----------------------------------------
    for name, parents in DOMAIN_HIERARCHY:
        builder.add_class(name, parents, color=Color.SEMANTIC)
    for name in DOMAIN_SYNTAX:
        builder.add_syntax_class(name)

    # --- core concept sequences ------------------------------------------
    core_roots: List[str] = []
    for name, cost, elements in CORE_SEQUENCES:
        builder.add_concept_sequence(name, elements, cost=cost)
        core_roots.append(name)
    for name, cost, elements, attaches_to in AUX_SEQUENCES:
        builder.add_concept_sequence(name, elements, auxiliary=True, cost=cost)
        builder.network.add_link(name, "aux", attaches_to)

    # --- lexical layer ------------------------------------------------------
    for word, pos, classes in CORE_VOCABULARY:
        entry = lexicon.lookup(word)
        builder.add_word(word, tuple(classes) + (entry.syntax_class,))

    cs_roots = list(core_roots)
    network = builder.network

    # --- filler to target size (paper layer mix) -------------------------
    deficit = total_nodes - network.num_nodes
    if deficit > 0:
        n_hier = int(deficit * 0.15)
        n_cs = int(deficit * 0.75)
        n_aux = int(deficit * 0.05)
        n_lex = deficit - n_hier - n_cs - n_aux

        # Filler hierarchy: subtrees under core classes.
        filler_leaves: List[str] = []
        hierarchy_roots = [name for name, _ in DOMAIN_HIERARCHY]
        for i in range(n_hier):
            # Chaining mostly onto existing filler leaves keeps the
            # taxonomy deep, matching the paper's 10-15 step paths.
            parent = (
                rng.choice(filler_leaves)
                if filler_leaves and rng.random() < 0.7
                else rng.choice(hierarchy_roots)
            )
            name = f"fc-{i}"
            builder.add_class(name, (parent,), color=Color.SEMANTIC)
            filler_leaves.append(name)
        if not filler_leaves:
            filler_leaves = ["entity"]

        # Filler concept sequences.
        used = 0
        index = 0
        while used + 3 <= n_cs:
            k = rng.randint(2, 4)
            k = min(k, n_cs - used - 1)
            elements = []
            for e in range(k):
                if rng.random() < filler_constraint_bias:
                    constraint = rng.choice(FILLER_CONSTRAINT_POOL)
                else:
                    constraint = rng.choice(filler_leaves)
                elements.append((f"e{e}", (constraint,)))
            name = f"fcs-{index}"
            builder.add_concept_sequence(
                name, elements, cost=round(rng.uniform(2.5, 4.0), 3)
            )
            cs_roots.append(name)
            used += 1 + k
            index += 1

        # Filler auxiliary sequences.
        used = 0
        index = 0
        while used + 2 <= n_aux:
            constraint = rng.choice(filler_leaves)
            name = f"faux-{index}"
            builder.add_concept_sequence(
                name, ((f"a0", (constraint,)),), auxiliary=True,
                cost=round(rng.uniform(0.5, 1.0), 3),
            )
            builder.network.add_link(name, "aux", rng.choice(cs_roots))
            used += 2
            index += 1

        # Filler lexicon: open-class vocabulary mapped into the filler
        # hierarchy.
        for i in range(max(0, n_lex)):
            word = f"xword{i}"
            classes = (rng.choice(filler_leaves), "noun")
            builder.add_word(word, classes)
            lexicon.add(word, "noun", classes[:1])

    network.validate()
    return DomainKB(
        network=network,
        lexicon=lexicon,
        cs_roots=cs_roots,
        core_roots=core_roots,
        target_nodes=total_nodes,
    )
