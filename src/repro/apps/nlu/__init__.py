"""NLU parsing on SNAP: the paper's primary application (§IV).

A phrasal parser (serial, controller-resident) chunks newswire
sentences; the memory-based parser then parses each chunk by marker
propagation over the "terrorism in Latin America" knowledge base,
resolving competing hypotheses with cancel markers.
"""

from .lexicon import CORE_VOCABULARY, LexEntry, Lexicon, POS, tokenize
from .kbgen import (
    AUX_SEQUENCES,
    CORE_SEQUENCES,
    DOMAIN_HIERARCHY,
    DOMAIN_SYNTAX,
    DomainKB,
    build_domain_kb,
)
from .phrasal import Phrase, PhraseKind, PhrasalParser, PhrasalResult
from .parser import MemoryBasedParser, ParseResult, ALL_PARSE_MARKERS
from .extraction import EventTemplate, extract_template, extract_text
from .corpus import MUC4_SENTENCES, NEWSWIRE_PASSAGE, sentences, sentence_ids

__all__ = [
    "CORE_VOCABULARY", "LexEntry", "Lexicon", "POS", "tokenize",
    "AUX_SEQUENCES", "CORE_SEQUENCES", "DOMAIN_HIERARCHY",
    "DOMAIN_SYNTAX", "DomainKB", "build_domain_kb",
    "Phrase", "PhraseKind", "PhrasalParser", "PhrasalResult",
    "MemoryBasedParser", "ParseResult", "ALL_PARSE_MARKERS",
    "EventTemplate", "extract_template", "extract_text",
    "MUC4_SENTENCES", "NEWSWIRE_PASSAGE", "sentences", "sentence_ids",
]
