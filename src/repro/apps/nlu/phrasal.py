"""The phrasal parser (serial, controller-resident).

*"Parsing time has been broken down into time for the phrasal parser
(P.P. time) and the memory based parser (M.B. time).  The phrasal
parser is a serial program that executes on the controller and thus
its processing time is relatively independent of knowledge base size.
The role of the phrasal parser is to break down the input sentence
into subparts which can be handled by the memory-based parser"*
(paper §IV).

Implemented as a deterministic finite-state chunker over lexicon POS
tags: noun phrases (determiner/adjective/number* noun+), verb groups
(verb with adverbs), and prepositional phrases (preposition + NP).
Its cost model is serial controller time per token, independent of KB
size by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .lexicon import LexEntry, Lexicon, POS, tokenize


class PhraseKind:
    """Chunk types produced by the phrasal parser."""

    NP = "NP"
    VP = "VP"
    PP = "PP"
    OTHER = "X"


@dataclass
class Phrase:
    """A chunk of the input sentence."""

    kind: str
    words: List[str]
    head: str
    #: Content words (those that activate lexical nodes).
    content: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.words)


@dataclass
class PhrasalResult:
    """Chunking output plus serial controller time."""

    sentence: str
    tokens: List[str]
    phrases: List[Phrase]
    pp_time_us: float

    @property
    def num_words(self) -> int:
        """Word count."""
        return len(self.tokens)


#: POS tags that contribute content (activate lexical nodes).
_CONTENT_POS = {POS.NOUN, POS.VERB, POS.PRON, POS.ADJ, POS.ADV}

#: POS tags that may open/extend the pre-head part of an NP.
_NP_PRE = {POS.DET, POS.ADJ, POS.NUM}


class PhrasalParser:
    """Finite-state chunker with a serial controller cost model."""

    def __init__(
        self,
        lexicon: Lexicon,
        t_per_token_us: float = 450.0,
        t_fixed_us: float = 3_000.0,
    ) -> None:
        self.lexicon = lexicon
        self.t_per_token_us = t_per_token_us
        self.t_fixed_us = t_fixed_us

    def parse(self, sentence: str) -> PhrasalResult:
        """Chunk a sentence; charge serial time per token."""
        tokens = tokenize(sentence)
        entries = [self.lexicon.lookup(t) for t in tokens]
        phrases = self._chunk(entries)
        pp_time = self.t_fixed_us + self.t_per_token_us * len(tokens)
        return PhrasalResult(
            sentence=sentence,
            tokens=tokens,
            phrases=phrases,
            pp_time_us=pp_time,
        )

    # ------------------------------------------------------------------
    def _chunk(self, entries: Sequence[LexEntry]) -> List[Phrase]:
        phrases: List[Phrase] = []
        i = 0
        n = len(entries)
        while i < n:
            entry = entries[i]
            if entry.pos in _NP_PRE or entry.pos in (POS.NOUN, POS.PRON):
                phrase, i = self._noun_phrase(entries, i)
                phrases.append(phrase)
            elif entry.pos == POS.VERB or entry.pos == POS.ADV:
                phrase, i = self._verb_group(entries, i)
                phrases.append(phrase)
            elif entry.pos == POS.PREP:
                phrase, i = self._prep_phrase(entries, i)
                phrases.append(phrase)
            else:  # conjunctions and anything unchunkable
                phrases.append(
                    Phrase(PhraseKind.OTHER, [entry.word], entry.word)
                )
                i += 1
        return phrases

    def _noun_phrase(
        self, entries: Sequence[LexEntry], start: int
    ) -> Tuple[Phrase, int]:
        i = start
        words: List[str] = []
        while i < len(entries) and entries[i].pos in _NP_PRE:
            words.append(entries[i].word)
            i += 1
        head = words[-1] if words else ""
        while i < len(entries) and entries[i].pos in (POS.NOUN, POS.PRON):
            words.append(entries[i].word)
            head = entries[i].word
            i += 1
        if not words:  # lone determiner at end of input
            words = [entries[start].word]
            head = words[0]
            i = start + 1
        content = [
            w for w, e in zip(words, entries[start:start + len(words)])
            if e.pos in _CONTENT_POS
        ]
        return Phrase(PhraseKind.NP, words, head, content), i

    def _verb_group(
        self, entries: Sequence[LexEntry], start: int
    ) -> Tuple[Phrase, int]:
        i = start
        words: List[str] = []
        head: Optional[str] = None
        while i < len(entries) and entries[i].pos in (POS.VERB, POS.ADV):
            words.append(entries[i].word)
            if head is None and entries[i].pos == POS.VERB:
                head = entries[i].word
            i += 1
        head = head or words[0]
        content = [
            w for w, e in zip(words, entries[start:start + len(words)])
            if e.pos in _CONTENT_POS
        ]
        return Phrase(PhraseKind.VP, words, head, content), i

    def _prep_phrase(
        self, entries: Sequence[LexEntry], start: int
    ) -> Tuple[Phrase, int]:
        words = [entries[start].word]
        i = start + 1
        if i < len(entries) and (
            entries[i].pos in _NP_PRE or entries[i].pos in (POS.NOUN, POS.PRON)
        ):
            inner, i = self._noun_phrase(entries, i)
            words.extend(inner.words)
            return (
                Phrase(PhraseKind.PP, words, inner.head, inner.content),
                i,
            )
        return Phrase(PhraseKind.PP, words, words[0]), i
