"""The memory-based parser (the SNAP application of paper §IV).

Parsing is performed *"by passing markers through a knowledge base"*:
as input phrases are read, markers are set on the corresponding
lexical nodes, propagated upward through the semantic and syntactic
layers, checked against concept-sequence constraints, and completed
sequences are collected with their accumulated costs; competing
hypotheses are then removed with cancel markers (the multiple-
hypotheses resolution phase whose growth with KB size drives Fig. 20).

The parser is architecture-independent: it drives any machine exposing
``run(program) -> report`` (the timed :class:`~repro.machine.machine.
SnapMachine`, the :class:`~repro.baselines.serial.SerialMachine`, or
the :class:`~repro.baselines.simd.SimdMachine`), which is how the
paper's machine comparisons are made on identical workloads.

Marker assignments (complex unless noted):

====== ==========================================================
m0     lexical activation (current phrase)
m1     semantic/syntactic class activation
m2     activated concept-sequence elements
m3     predicted elements
m4     confirmed elements (activation ∧ prediction, cost summed)
m5     completed concept-sequence roots (with final cost)
m6     confirmation history (all phrases)
m7     concept-sequence roots (search template)
m8     first-element prediction template
m9     roots with any confirmed element
m10    losing activated roots
m11    cancel wave over losing sequences
m12    winning root
m13    stale predictions (predicted, never confirmed)
b0     complement of winner (binary)
b1     keep mask after cancellation (binary)
b2     complement of confirmed set (binary scratch)
====== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...isa.instructions import (
    AndMarker,
    ClearMarker,
    CollectMarker,
    CollectNode,
    Instruction,
    MarkerCreate,
    NotMarker,
    OrMarker,
    Propagate,
    SearchColor,
    SearchNode,
    binary_marker,
    complex_marker,
)
from ...isa.program import SnapProgram
from ...isa.rules import chain, comb, step
from ...network.node import Color
from .kbgen import DomainKB
from .phrasal import Phrase, PhrasalParser, PhrasalResult

# Marker register assignments (see module docstring).
M_ACT = complex_marker(0)
M_CLS = complex_marker(1)
M_ELEM = complex_marker(2)
M_PRED = complex_marker(3)
M_CONF = complex_marker(4)
M_DONE = complex_marker(5)
M_HIST = complex_marker(6)
M_ROOT = complex_marker(7)
M_FIRST = complex_marker(8)
M_CROOT = complex_marker(9)
M_LOSE = complex_marker(10)
M_CANCEL = complex_marker(11)
M_WIN = complex_marker(12)
M_STALE = complex_marker(13)
B_NOTWIN = binary_marker(0)
B_KEEP = binary_marker(1)
B_STALE = binary_marker(2)

#: Rotating activation/class marker pools: word *i* of a phrase uses
#: pool ``i % 4``, so the per-word is-a climbs are marker-disjoint and
#: the controller overlaps them — this is where the parser's
#: β-parallelism comes from (§II-C).
B_ACT_POOL = tuple(binary_marker(3 + i) for i in range(4))
M_CLS_POOL = tuple(complex_marker(16 + i) for i in range(4))

ALL_PARSE_MARKERS = (
    M_ACT, M_CLS, M_ELEM, M_PRED, M_CONF, M_DONE, M_HIST, M_ROOT,
    M_FIRST, M_CROOT, M_LOSE, M_CANCEL, M_WIN, M_STALE,
    B_NOTWIN, B_KEEP, B_STALE,
) + B_ACT_POOL + M_CLS_POOL

#: Markers that must be clean when a parse starts.  The per-phrase and
#: per-resolution programs clear their own scratch markers (activation
#: and class pools, M_ELEM/M_CONF, M_LOSE) immediately before use, so
#: the configuration phase only resets the parse-persistent state.
INIT_CLEAR_MARKERS = (
    M_PRED, M_DONE, M_HIST, M_ROOT, M_FIRST, M_CROOT, M_CANCEL,
    M_WIN, M_STALE, B_NOTWIN, B_KEEP, B_STALE,
)


@dataclass
class ParseResult:
    """Outcome and measurements of parsing one sentence."""

    sentence: str
    phrases: List[Phrase]
    #: Winning concept sequence (None when nothing completed).
    winner: Optional[str]
    cost: Optional[float]
    #: All completed hypotheses: (root name, accumulated cost).
    candidates: List[Tuple[str, float]]
    #: Confirmed-element bindings of the surviving hypothesis.
    bindings: List[str]
    pp_time_us: float
    mb_time_us: float
    instruction_count: int
    propagate_count: int
    #: Individual marker propagation events (deliveries) — the unit
    #: Fig. 20 calls "number of propagations"; grows with KB size as
    #: irrelevant candidates activate and get cancelled.
    propagation_events: int = 0
    #: Out-of-vocabulary words skipped during activation.
    oov: List[str] = field(default_factory=list)
    #: Completed auxiliary sequences (optional constituents: time-case,
    #: location-case) attached to the parse.
    auxiliaries: List[str] = field(default_factory=list)
    #: Per-category instruction counts across all program segments.
    category_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-category busy/exec time where the machine reports it (µs).
    category_time_us: Dict[str, float] = field(default_factory=dict)
    #: Raw run-report summaries per program segment.
    segment_times_us: List[float] = field(default_factory=list)
    #: Per-binding detail: (element name, accumulated cost, origin
    #: node name) — the origin is the class whose activation confirmed
    #: the element, used by template extraction to fill event roles.
    binding_details: List[Tuple[str, float, Optional[str]]] = field(
        default_factory=list
    )

    @property
    def total_time_us(self) -> float:
        """Total time across categories / components, in microseconds."""
        return self.pp_time_us + self.mb_time_us

    @property
    def num_words(self) -> int:
        """Word count."""
        return sum(len(p.words) for p in self.phrases)


class MemoryBasedParser:
    """Marker-propagation parser over a domain knowledge base."""

    def __init__(self, machine: Any, kb: DomainKB,
                 phrasal: Optional[PhrasalParser] = None,
                 keep_trace: bool = False) -> None:
        self.machine = machine
        self.kb = kb
        self.phrasal = phrasal or PhrasalParser(kb.lexicon)
        self._result_counter = 0
        #: When ``keep_trace``, every (program, report) pair is logged
        #: for α/β analysis (the §IV parallelism measurements).
        self.keep_trace = keep_trace
        self.trace_log: List[Tuple[SnapProgram, Any]] = []

    # ------------------------------------------------------------------
    def parse(self, sentence: str) -> ParseResult:
        """Parse one sentence end-to-end."""
        phrasal_result = self.phrasal.parse(sentence)
        mb_time = 0.0
        seg_times: List[float] = []
        cat_counts: Dict[str, int] = {}
        cat_time: Dict[str, float] = {}
        propagates = 0
        instructions = 0
        events = 0
        oov: List[str] = []

        def run(program: SnapProgram):
            """Run to completion; returns the result/report."""
            nonlocal mb_time, propagates, instructions, events
            report = self.machine.run(program)
            if self.keep_trace:
                self.trace_log.append((program, report))
            mb_time += report.total_time_us
            seg_times.append(report.total_time_us)
            for trace in report.traces:
                cat_counts[trace.category] = (
                    cat_counts.get(trace.category, 0) + 1
                )
                instructions += 1
                events += getattr(trace, "arrivals", 0)
                if trace.category == "propagate":
                    propagates += 1
            busy = getattr(report, "category_busy_us", None)
            if busy:
                for category, t in busy.items():
                    cat_time[category] = cat_time.get(category, 0.0) + t
            return report

        # --- configuration: clear state, seed predictions ---------------
        run(self._init_program())

        # --- one segment per contentful phrase ---------------------------
        for phrase in phrasal_result.phrases:
            # Every word sets a marker on its lexical node (§II-A);
            # function words activate their syntactic categories.
            words = [w for w in phrase.words if self.kb.has_word(w)]
            oov.extend(w for w in phrase.words if not self.kb.has_word(w))
            if not any(self.kb.has_word(w) for w in phrase.content):
                continue
            run(self._phrase_program(words))

        # --- completion: collect finished hypotheses ----------------------
        report = run(self._completion_program())
        collected = report.results()
        candidates_raw = collected[-1] if collected else []
        activated_raw = collected[-2] if len(collected) >= 2 else []
        # Auxiliary sequences (time-case, location-case) complete too,
        # but only basic concept sequences are sentence hypotheses.
        candidates = [
            (self.kb.network.node(gid).name, round(value, 4))
            for gid, value, _origin in candidates_raw
            if self.kb.network.node(gid).color == Color.CS_ROOT
        ]
        completed_aux = [
            self.kb.network.node(gid).name
            for gid, _value, _origin in candidates_raw
            if self.kb.network.node(gid).color == Color.CS_AUX
        ]
        candidates.sort(key=lambda item: item[1])
        activated_roots = [name for _gid, name in activated_raw]

        winner: Optional[str] = None
        cost: Optional[float] = None
        bindings: List[str] = []
        binding_details: List[Tuple[str, float, Optional[str]]] = []
        if candidates:
            winner, cost = candidates[0]
            losers = [name for name in activated_roots if name != winner]
            report = run(self._resolution_program(winner, losers))
            results = report.results()
            if results:
                bindings = [name for _gid, name in results[-1]]
                net = self.kb.network
                binding_details = [
                    (
                        net.node(gid).name,
                        round(value, 4),
                        net.node(origin).name if origin >= 0 else None,
                    )
                    for gid, value, origin in results[-2]
                ]

        return ParseResult(
            sentence=sentence,
            phrases=phrasal_result.phrases,
            winner=winner,
            cost=cost,
            candidates=candidates,
            bindings=bindings,
            binding_details=binding_details,
            pp_time_us=phrasal_result.pp_time_us,
            mb_time_us=mb_time,
            instruction_count=instructions,
            propagate_count=propagates,
            propagation_events=events,
            oov=oov,
            category_counts=cat_counts,
            category_time_us=cat_time,
            segment_times_us=seg_times,
            auxiliaries=completed_aux,
        )

    def parse_text(self, sentences: Sequence[str]) -> List[ParseResult]:
        """Parse a sequence of sentences (bulk text understanding)."""
        return [self.parse(s) for s in sentences]

    # ------------------------------------------------------------------
    # Program builders
    # ------------------------------------------------------------------
    def _init_program(self) -> SnapProgram:
        program = SnapProgram(name="parse-init")
        for marker in INIT_CLEAR_MARKERS:
            program.append(ClearMarker(marker))
        # Activate every concept-sequence root — basic and auxiliary
        # (optional constituents such as time-case, Fig. 1) — and push
        # the prediction template onto each sequence's first element.
        program.append(SearchColor(Color.CS_ROOT, M_ROOT, 0.0))
        program.append(SearchColor(Color.CS_AUX, M_ROOT, 0.0))
        program.append(
            Propagate(M_ROOT, M_FIRST, step("first"), "add-weight")
        )
        program.append(OrMarker(M_FIRST, M_FIRST, M_PRED, "first"))
        return program

    def _phrase_program(self, words: Sequence[str]) -> SnapProgram:
        program = SnapProgram(name="parse-phrase")
        for marker in (M_CLS, M_ELEM, M_CONF):
            program.append(ClearMarker(marker))
        # Activation climbs the is-a hierarchy word by word ("as input
        # words are read, the controller broadcasts instructions to set
        # markers on the corresponding lexical nodes", §II-A).  Each
        # word uses a rotating marker pair, so consecutive climbs are
        # data-independent and overlap in the array (β-parallelism).
        pool_size = len(B_ACT_POOL)
        for start in range(0, len(words), pool_size):
            chunk = words[start: start + pool_size]
            for i, word in enumerate(chunk):
                program.append(ClearMarker(B_ACT_POOL[i]))
                program.append(ClearMarker(M_CLS_POOL[i]))
                program.append(
                    SearchNode(f"w:{word.lower()}", B_ACT_POOL[i], 0.0)
                )
                program.append(
                    Propagate(
                        B_ACT_POOL[i], M_CLS_POOL[i], chain("is-a"),
                        "add-weight",
                    )
                )
            # Merge the chunk's activations (strengths accumulate)
            # before the pools are reused.
            for i in range(len(chunk)):
                program.append(
                    OrMarker(M_CLS_POOL[i], M_CLS, M_CLS, "add")
                )
        # Reflect activated classes onto the concept-sequence elements
        # they license.
        program.append(
            Propagate(M_CLS, M_ELEM, step("syntax-of"), "add-weight")
        )
        # Constraint check: element activated AND predicted.
        program.append(AndMarker(M_ELEM, M_PRED, M_CONF, "add"))
        program.append(OrMarker(M_CONF, M_HIST, M_HIST, "max"))
        # Stale predictions (predicted but unconfirmed) are tracked so
        # hypotheses that stop matching lose standing.
        program.append(NotMarker(M_CONF, B_STALE))
        program.append(AndMarker(M_PRED, B_STALE, M_STALE, "first"))
        # Advance predictions; completed sequences mark their root.
        program.append(ClearMarker(M_PRED))
        program.append(Propagate(M_CONF, M_PRED, step("next"), "add-weight"))
        program.append(Propagate(M_CONF, M_DONE, step("last"), "add-weight"))
        # New sequences may start at any phrase.
        program.append(OrMarker(M_PRED, M_FIRST, M_PRED, "first"))
        return program

    def _completion_program(self) -> SnapProgram:
        program = SnapProgram(name="parse-complete")
        program.append(
            Propagate(M_HIST, M_CROOT, step("element-of"), "identity")
        )
        program.append(CollectNode(M_CROOT))
        program.append(CollectMarker(M_DONE))
        return program

    def _resolution_program(
        self, winner: str, losers: Sequence[str] = ()
    ) -> SnapProgram:
        """Multiple-hypotheses resolution: cancel losing sequences.

        *"More irrelevant candidates become activated which must be
        removed by propagating cancel markers during the multiple
        hypotheses resolution phase"* (§IV) — this is that phase.  The
        cancel wave floods every element of every losing hypothesis,
        so the number of propagation events grows with the number of
        activated candidates — which grows with KB size (Fig. 20).
        """
        self._result_counter += 1
        result_node = f"result:{self._result_counter}"
        program = SnapProgram(name="parse-resolve")
        program.append(SearchNode(winner, M_WIN, 0.0))
        program.append(NotMarker(M_WIN, B_NOTWIN))
        program.append(AndMarker(M_CROOT, B_NOTWIN, M_LOSE, "first"))
        # Cancel wave: losing roots flood their sequence elements.
        program.append(
            Propagate(M_LOSE, M_CANCEL, comb("first", "next"), "identity")
        )
        program.append(NotMarker(M_CANCEL, B_KEEP))
        program.append(AndMarker(M_HIST, B_KEEP, M_HIST, "first"))
        program.append(
            MarkerCreate(M_HIST, "binding", result_node, "binding-inverse")
        )
        program.append(CollectMarker(M_HIST))
        program.append(CollectNode(M_HIST))
        return program
