"""Lexicon for the newswire NLU domain.

The paper's evaluation application *"accepts newswire text as input
and generates the meaning of the sentence as output ... by passing
markers through a knowledge base about terrorism in Latin America"*
(§IV), the MUC-4 task.  This module provides the lexical layer: a
hand-built core vocabulary for that domain with part-of-speech and
semantic-class assignments, plus an open-class fallback so arbitrary
newswire-like sentences tokenize and tag deterministically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class POS:
    """Part-of-speech tags used by the phrasal parser."""

    NOUN = "noun"
    VERB = "verb"
    DET = "determiner"
    ADJ = "adjective"
    ADV = "adverb"
    PREP = "preposition"
    PRON = "pronoun"
    CONJ = "conjunction"
    NUM = "number"


@dataclass(frozen=True)
class LexEntry:
    """One word: its part of speech and semantic classes."""

    word: str
    pos: str
    #: Semantic classes in the concept-type hierarchy (e.g. *human*,
    #: *attack-act*); the word's lexical node links ``is-a`` to these.
    classes: Tuple[str, ...] = ()

    @property
    def syntax_class(self) -> str:
        """The syntactic category node this word activates."""
        return _POS_SYNTAX[self.pos]


_POS_SYNTAX = {
    POS.NOUN: "noun",
    POS.VERB: "verb",
    POS.DET: "determiner",
    POS.ADJ: "adjective",
    POS.ADV: "adverb",
    POS.PREP: "preposition",
    POS.PRON: "noun",       # pronouns head noun phrases
    POS.CONJ: "conjunction",
    POS.NUM: "adjective",
}

#: The hand-built core vocabulary: (word, pos, semantic classes).
CORE_VOCABULARY: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    # --- actors ----------------------------------------------------------
    ("terrorists", POS.NOUN, ("terrorist", "human", "animate")),
    ("terrorist", POS.NOUN, ("terrorist", "human", "animate")),
    ("guerrillas", POS.NOUN, ("guerrilla", "human", "animate")),
    ("guerrilla", POS.NOUN, ("guerrilla", "human", "animate")),
    ("rebels", POS.NOUN, ("guerrilla", "human", "animate")),
    ("soldiers", POS.NOUN, ("military", "human", "animate")),
    ("army", POS.NOUN, ("military", "organization")),
    ("police", POS.NOUN, ("authority", "organization")),
    ("government", POS.NOUN, ("authority", "organization")),
    ("mayor", POS.NOUN, ("official", "human", "animate")),
    ("president", POS.NOUN, ("official", "human", "animate")),
    ("ambassador", POS.NOUN, ("official", "human", "animate")),
    ("judge", POS.NOUN, ("official", "human", "animate")),
    ("civilians", POS.NOUN, ("civilian", "human", "animate")),
    ("peasants", POS.NOUN, ("civilian", "human", "animate")),
    ("journalists", POS.NOUN, ("civilian", "human", "animate")),
    ("group", POS.NOUN, ("organization",)),
    ("men", POS.NOUN, ("human", "animate")),
    ("we", POS.PRON, ("human", "animate")),
    ("they", POS.PRON, ("human", "animate")),
    # --- targets / objects -------------------------------------------------
    ("embassy", POS.NOUN, ("building", "target")),
    ("headquarters", POS.NOUN, ("building", "target")),
    ("office", POS.NOUN, ("building", "target")),
    ("residence", POS.NOUN, ("building", "target")),
    ("pipeline", POS.NOUN, ("infrastructure", "target")),
    ("bridge", POS.NOUN, ("infrastructure", "target")),
    ("vehicle", POS.NOUN, ("vehicle", "target")),
    ("vehicles", POS.NOUN, ("vehicle", "target")),
    ("car", POS.NOUN, ("vehicle", "target")),
    ("bus", POS.NOUN, ("vehicle", "target")),
    ("bomb", POS.NOUN, ("weapon",)),
    ("dynamite", POS.NOUN, ("weapon",)),
    ("weapons", POS.NOUN, ("weapon",)),
    ("attack", POS.NOUN, ("attack-act", "event-noun")),
    ("attacks", POS.NOUN, ("attack-act", "event-noun")),
    ("explosion", POS.NOUN, ("attack-act", "event-noun")),
    ("kidnapping", POS.NOUN, ("kidnap-act", "event-noun")),
    ("murder", POS.NOUN, ("kill-act", "event-noun")),
    ("statement", POS.NOUN, ("communication",)),
    ("responsibility", POS.NOUN, ("communication",)),
    ("damage", POS.NOUN, ("effect",)),
    ("casualties", POS.NOUN, ("effect",)),
    # --- places / times ----------------------------------------------------
    ("bogota", POS.NOUN, ("city", "place")),
    ("lima", POS.NOUN, ("city", "place")),
    ("medellin", POS.NOUN, ("city", "place")),
    ("salvador", POS.NOUN, ("city", "place")),
    ("colombia", POS.NOUN, ("country", "place")),
    ("peru", POS.NOUN, ("country", "place")),
    ("city", POS.NOUN, ("place",)),
    ("neighborhood", POS.NOUN, ("place",)),
    ("yesterday", POS.NOUN, ("time-expr",)),
    ("today", POS.NOUN, ("time-expr",)),
    ("morning", POS.NOUN, ("time-expr",)),
    ("night", POS.NOUN, ("time-expr",)),
    ("monday", POS.NOUN, ("time-expr",)),
    # --- verbs -------------------------------------------------------------
    ("attacked", POS.VERB, ("attack-act",)),
    ("bombed", POS.VERB, ("attack-act",)),
    ("exploded", POS.VERB, ("attack-act",)),
    ("destroyed", POS.VERB, ("attack-act",)),
    ("damaged", POS.VERB, ("attack-act",)),
    ("kidnapped", POS.VERB, ("kidnap-act",)),
    ("abducted", POS.VERB, ("kidnap-act",)),
    ("killed", POS.VERB, ("kill-act",)),
    ("murdered", POS.VERB, ("kill-act",)),
    ("assassinated", POS.VERB, ("kill-act",)),
    ("injured", POS.VERB, ("kill-act",)),
    ("claimed", POS.VERB, ("statement-act",)),
    ("reported", POS.VERB, ("statement-act",)),
    ("announced", POS.VERB, ("statement-act",)),
    ("said", POS.VERB, ("statement-act",)),
    ("occurred", POS.VERB, ("happen-act",)),
    ("took", POS.VERB, ("happen-act",)),
    ("place", POS.NOUN, ("place",)),
    ("saw", POS.VERB, ("see-act",)),
    ("found", POS.VERB, ("see-act",)),
    # --- function words -----------------------------------------------------
    ("the", POS.DET, ()),
    ("a", POS.DET, ()),
    ("an", POS.DET, ()),
    ("this", POS.DET, ()),
    ("several", POS.DET, ()),
    ("two", POS.NUM, ()),
    ("three", POS.NUM, ()),
    ("five", POS.NUM, ()),
    ("in", POS.PREP, ()),
    ("at", POS.PREP, ()),
    ("on", POS.PREP, ()),
    ("of", POS.PREP, ()),
    ("near", POS.PREP, ()),
    ("against", POS.PREP, ()),
    ("with", POS.PREP, ()),
    ("for", POS.PREP, ()),
    ("by", POS.PREP, ()),
    ("and", POS.CONJ, ()),
    ("powerful", POS.ADJ, ()),
    ("armed", POS.ADJ, ()),
    ("unidentified", POS.ADJ, ()),
    ("urban", POS.ADJ, ()),
    ("downtown", POS.ADJ, ()),
    ("heavily", POS.ADV, ()),
    ("reportedly", POS.ADV, ()),
)


class Lexicon:
    """Word → lexical entry lookup with open-class fallback."""

    def __init__(
        self,
        entries: Iterable[Tuple[str, str, Tuple[str, ...]]] = CORE_VOCABULARY,
    ) -> None:
        self._entries: Dict[str, LexEntry] = {}
        for word, pos, classes in entries:
            self.add(word, pos, classes)

    def add(
        self, word: str, pos: str, classes: Sequence[str] = ()
    ) -> LexEntry:
        """Append one entry."""
        entry = LexEntry(word.lower(), pos, tuple(classes))
        self._entries[entry.word] = entry
        return entry

    def lookup(self, word: str) -> LexEntry:
        """Entry for ``word``; unknown words default to generic nouns.

        The open-class fallback keeps arbitrary newswire input
        parseable, as the MUC systems did.
        """
        key = word.lower()
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        return LexEntry(key, POS.NOUN, ("entity",))

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def words(self) -> List[str]:
        """All words, sorted."""
        return sorted(self._entries)

    def entries(self) -> List[LexEntry]:
        """All lexical entries, sorted by word."""
        return [self._entries[w] for w in sorted(self._entries)]


_TOKEN_RE = re.compile(r"[a-zA-Z]+|\d+")


def tokenize(sentence: str) -> List[str]:
    """Lowercased word tokens (punctuation stripped)."""
    return [t.lower() for t in _TOKEN_RE.findall(sentence)]
