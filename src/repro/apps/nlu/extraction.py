"""Information extraction: from parse to MUC-style event template.

The paper's application *"accepts newswire text as input and generates
the meaning of the sentence as output"* (§IV) — i.e. a filled event
template in the MUC-4 style (who did what to whom, where, when).  This
module turns a :class:`~repro.apps.nlu.parser.ParseResult` into that
meaning representation:

* the **event type** is the winning concept sequence;
* each confirmed element of the winner becomes a **role**, filled with
  the sentence words whose semantic classes licensed it (recovered
  through the marker *origin addresses* — the 15-bit origin field that
  complex markers carry precisely so results can be bound back to
  their sources, Fig. 4);
* completed auxiliary sequences contribute **time/location modifiers**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .kbgen import DomainKB
from .lexicon import tokenize
from .parser import ParseResult


@dataclass
class EventTemplate:
    """A filled MUC-style event template."""

    event_type: str
    confidence_cost: float
    #: role (element short name) -> filler words from the sentence.
    roles: Dict[str, List[str]] = field(default_factory=dict)
    #: Modifier constituents (time-case, location-case) with fillers.
    modifiers: Dict[str, List[str]] = field(default_factory=dict)
    sentence: str = ""

    def render(self) -> str:
        """Human-readable text rendering."""
        lines = [f"event: {self.event_type} (cost {self.confidence_cost})"]
        for role, fillers in self.roles.items():
            lines.append(f"  {role:<12} = {' '.join(fillers) or '?'}")
        for modifier, fillers in self.modifiers.items():
            lines.append(f"  [{modifier}]   = {' '.join(fillers) or '?'}")
        return "\n".join(lines)


def _classes_of_word(kb: DomainKB, word: str) -> Set[str]:
    """Transitive is-a closure of a word's classes in the KB."""
    network = kb.network
    name = f"w:{word.lower()}"
    if name not in network:
        return set()
    closure: Set[str] = set()
    frontier = [network.resolve(name)]
    while frontier:
        nid = frontier.pop()
        for link in network.outgoing_by_relation(nid, "is-a"):
            dest = network.node(link.dest).name
            if dest not in closure:
                closure.add(dest)
                frontier.append(network.resolve(dest))
    return closure


def _element_constraints(kb: DomainKB, element: str) -> Set[str]:
    """The classes an element constrains on (its is-a links)."""
    network = kb.network
    return {
        network.node(link.dest).name
        for link in network.outgoing_by_relation(element, "is-a")
    }


def _ordered_elements(kb: DomainKB, root: str) -> List[str]:
    """A concept sequence's elements in first/next order."""
    network = kb.network
    out: List[str] = []
    first = network.outgoing_by_relation(root, "first")
    if not first:
        return out
    current = network.node(first[0].dest).name
    seen: Set[str] = set()
    while current and current not in seen:
        seen.add(current)
        out.append(current)
        nxt = network.outgoing_by_relation(current, "next")
        current = network.node(nxt[0].dest).name if nxt else None
    return out


def extract_template(
    result: ParseResult, kb: DomainKB
) -> Optional[EventTemplate]:
    """Build the event template for a parse (None if nothing won)."""
    if result.winner is None:
        return None
    template = EventTemplate(
        event_type=result.winner,
        confidence_cost=result.cost if result.cost is not None else 0.0,
        sentence=result.sentence,
    )
    words = tokenize(result.sentence)
    word_classes = {word: _classes_of_word(kb, word) for word in words}
    confirmed = {name for name, _cost, _origin in result.binding_details}

    # Elements fill in sequence order and sentence order jointly: the
    # i-th confirmed element takes the earliest matching word after
    # the previous element's filler (concept sequences encode word
    # order, which is how two human-constrained roles like
    # kidnapper/victim disambiguate).
    prefix = f"{result.winner}."
    cursor = 0
    for element in _ordered_elements(kb, result.winner):
        if element not in confirmed:
            continue
        role = element[len(prefix):]
        constraints = _element_constraints(kb, element)
        filler: List[str] = []
        for position in range(cursor, len(words)):
            if word_classes[words[position]] & constraints:
                filler = [words[position]]
                cursor = position + 1
                break
        if not filler:
            # No positional match (e.g. scrambled input): fall back to
            # any matching word.
            filler = [
                w for w in words if word_classes[w] & constraints
            ][:1]
        template.roles[role] = filler

    for aux in dict.fromkeys(result.auxiliaries):
        constraints: Set[str] = set()
        for name, _cost, _origin in result.binding_details:
            if name.startswith(f"{aux}."):
                constraints |= _element_constraints(kb, name)
        if not constraints:
            # Fall back to the aux sequence's own first element.
            network = kb.network
            first = network.outgoing_by_relation(aux, "first")
            if first:
                constraints = _element_constraints(
                    kb, network.node(first[0].dest).name
                )
        template.modifiers[aux] = [
            word for word in words if word_classes[word] & constraints
        ]
    return template


def extract_text(
    results: List[ParseResult], kb: DomainKB
) -> List[EventTemplate]:
    """Templates for a parsed passage (skipping failed parses)."""
    templates = []
    for result in results:
        template = extract_template(result, kb)
        if template is not None:
            templates.append(template)
    return templates
