"""SNAP applications: NLU parsing, inheritance, classification.

The three application families the paper used to validate and evaluate
the architecture (§II-B, §IV).
"""

from . import nlu
from .speech import (
    CONFUSION_PAIRS,
    LatticeError,
    MAX_ALTERNATIVES,
    SpeechParser,
    SpeechResult,
    WordHypothesis,
    WordLattice,
    synthesize_lattice,
)
from .inheritance import (
    InheritanceRun,
    inheritance_program,
    property_lookup_program,
    run_inheritance,
)
from .classification import (
    ClassificationError,
    ClassificationResult,
    classification_program,
    classify,
    install_property,
)

__all__ = [
    "nlu",
    "CONFUSION_PAIRS",
    "LatticeError",
    "MAX_ALTERNATIVES",
    "SpeechParser",
    "SpeechResult",
    "WordHypothesis",
    "WordLattice",
    "synthesize_lattice",
    "InheritanceRun",
    "inheritance_program",
    "property_lookup_program",
    "run_inheritance",
    "ClassificationError",
    "ClassificationResult",
    "classification_program",
    "classify",
    "install_property",
]
