"""Property inheritance over a concept hierarchy (Fig. 15 workload).

*"Performance was also measured for some basic inferencing operations
such as inheritance of attributes from concepts in the knowledge base
hierarchy"* (§IV).  Inheritance from *root to leaf* pushes a property
marker down the hierarchy (along ``inverse:is-a`` links installed by
the hierarchy generator), so every concept inherits the root's
attributes; the length of the critical path is the hierarchy depth,
which is what the CM-2's per-step controller round-trip multiplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..isa.instructions import (
    AndMarker,
    ClearMarker,
    CollectNode,
    Propagate,
    SearchNode,
    binary_marker,
    complex_marker,
)
from ..isa.program import SnapProgram
from ..isa.rules import chain, step
from ..network.generator import HIERARCHY_ROOT, generate_hierarchy_kb
from ..network.graph import SemanticNetwork

M_SRC = complex_marker(20)
M_INHERIT = complex_marker(21)
M_PROP = complex_marker(22)
M_HAS = complex_marker(23)


def inheritance_program(
    root: str = HIERARCHY_ROOT,
    num_properties: int = 4,
) -> SnapProgram:
    """Root-to-leaf inheritance of the root's attributes.

    One flood per attribute (matching *"inheritance of attributes"* —
    every attribute's value must reach every concept), each followed by
    retrieval of the inheriting concepts.  Attribute floods use
    distinct markers, so the controller overlaps them (β-parallelism);
    each COLLECT then forces a barrier.
    """
    program = SnapProgram(name="inheritance")
    program.append(ClearMarker(M_SRC))
    for k in range(num_properties):
        program.append(ClearMarker(complex_marker(21 + k)))
    program.append(SearchNode(root, M_SRC, 0.0))
    for k in range(num_properties):
        marker = complex_marker(21 + k)
        program.append(
            Propagate(M_SRC, marker, chain("inverse:is-a"), "add-weight")
        )
    for k in range(num_properties):
        program.append(CollectNode(complex_marker(21 + k)))
    return program


def property_lookup_program(concept: str, prop: str) -> SnapProgram:
    """Does ``concept`` inherit property ``prop``? (upward inheritance)

    Marks the concept, climbs ``is-a`` to its ancestors, steps onto
    their properties, and intersects with the property node.
    """
    program = SnapProgram(name="property-lookup")
    for marker in (M_SRC, M_INHERIT, M_PROP, M_HAS):
        program.append(ClearMarker(marker))
    program.append(SearchNode(concept, M_SRC, 0.0))
    program.append(
        Propagate(M_SRC, M_INHERIT, chain("is-a"), "count-hops")
    )
    program.append(
        Propagate(M_INHERIT, M_PROP, step("has-property"), "identity")
    )
    program.append(SearchNode(f"p:{prop}", M_HAS, 0.0))
    program.append(AndMarker(M_PROP, M_HAS, M_HAS, "first"))
    program.append(CollectNode(M_HAS))
    return program


@dataclass
class InheritanceRun:
    """Measurement of one root-to-leaf inheritance."""

    kb_nodes: int
    time_us: float
    inherited: int
    machine: str

    @property
    def time_s(self) -> float:
        """Execution time in seconds."""
        return self.time_us / 1e6


def run_inheritance(machine: Any, kb_nodes: int, label: str) -> InheritanceRun:
    """Execute the inheritance program and time it on ``machine``.

    ``machine`` is any object with ``run(program) -> report``; the KB
    must already be loaded (use :func:`repro.network.generator.
    generate_hierarchy_kb`).
    """
    report = machine.run(inheritance_program())
    results = report.results()
    inherited = len(results[-1]) if results else 0
    return InheritanceRun(
        kb_nodes=kb_nodes,
        time_us=report.total_time_us,
        inherited=inherited,
        machine=label,
    )
