"""Speech understanding on SNAP: the PASS-style workload.

The paper's second primary application area is Speech Processing; the
**PASS** speech understanding program is the workload whose
inter-propagation parallelism the paper measures at β between 2.8 and
6 (§II-C) — higher than the text parser's, because a speech recognizer
supplies *competing word hypotheses per time slot*, and each
alternative's activation climb is marker-independent, so the
controller overlaps them all.

This module implements that structure: a :class:`WordLattice` of
time-indexed word hypotheses with acoustic costs (the synthetic stand-
in for a 1991 HMM front end), and a :class:`SpeechParser` that
evaluates all alternatives of a slot in parallel against the same
concept-sequence knowledge base the text parser uses.  The winning
reading minimizes acoustic + knowledge-base cost, exactly the
"strength values of competing hypotheses" the TMS320C30's FPU was
selected for (§III-A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import (
    AndMarker,
    ClearMarker,
    CollectMarker,
    CollectNode,
    OrMarker,
    Propagate,
    SearchColor,
    SearchNode,
    complex_marker,
)
from ..isa.program import SnapProgram
from ..isa.rules import chain, step
from ..network.node import Color
from .nlu.kbgen import DomainKB
from .nlu.parser import (
    M_CONF,
    M_DONE,
    M_ELEM,
    M_FIRST,
    M_HIST,
    M_PRED,
    M_ROOT,
)

#: Maximum competing word hypotheses per time slot (the PASS β range
#: tops out at 6).
MAX_ALTERNATIVES = 6

#: Marker pools for parallel alternative evaluation (disjoint from the
#: text parser's 0-19 and the inferencing apps' 20-46 banks).
M_ACT_POOL = tuple(complex_marker(48 + i) for i in range(MAX_ALTERNATIVES))
M_CLS_POOL = tuple(complex_marker(54 + i) for i in range(MAX_ALTERNATIVES))

#: Acoustically confusable in-vocabulary word sets used to synthesize
#: recognition alternatives (all members are in the domain lexicon).
CONFUSION_PAIRS: Tuple[Tuple[str, ...], ...] = (
    ("attacked", "attacks", "attack", "abducted"),
    ("bombed", "bomb", "bus", "bridge"),
    ("killed", "kidnapped", "claimed", "kidnapping"),
    ("murdered", "murder", "morning", "mayor"),
    ("guerrillas", "guerrilla", "casualties", "civilians"),
    ("terrorists", "terrorist", "journalists", "peasants"),
    ("mayor", "men", "monday", "murder"),
    ("embassy", "army", "ambassador", "assassinated"),
    ("city", "civilians", "colombia", "casualties"),
    ("reported", "exploded", "residence", "reportedly"),
    ("today", "yesterday", "they", "destroyed"),
    ("bogota", "colombia", "bridge", "bomb"),
    ("soldiers", "several", "said", "salvador"),
    ("weapons", "peasants", "vehicles", "vehicle"),
    ("police", "peru", "pipeline", "place"),
    ("damaged", "dynamite", "destroyed", "damage"),
    ("injured", "judge", "group", "journalists"),
)


class LatticeError(ValueError):
    """Raised for malformed word lattices."""


@dataclass(frozen=True)
class WordHypothesis:
    """One recognized word alternative with its acoustic cost."""

    word: str
    acoustic_cost: float


@dataclass
class WordLattice:
    """Time-indexed competing word hypotheses.

    ``slots[t]`` holds the alternatives the recognizer proposes for
    time slot ``t``, best (lowest acoustic cost) first.
    """

    slots: List[List[WordHypothesis]] = field(default_factory=list)

    def add_slot(self, alternatives: Sequence[WordHypothesis]) -> None:
        """Append a time slot of competing word hypotheses."""
        if not alternatives:
            raise LatticeError("a lattice slot needs >= 1 hypothesis")
        if len(alternatives) > MAX_ALTERNATIVES:
            raise LatticeError(
                f"at most {MAX_ALTERNATIVES} alternatives per slot"
            )
        self.slots.append(
            sorted(alternatives, key=lambda h: h.acoustic_cost)
        )

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def mean_branching(self) -> float:
        """Mean hypotheses per slot."""
        if not self.slots:
            return 0.0
        return sum(len(s) for s in self.slots) / len(self.slots)

    def best_path(self) -> List[str]:
        """The acoustically best word per slot."""
        return [slot[0].word for slot in self.slots]


def synthesize_lattice(
    sentence: str,
    confusability: float = 0.7,
    seed: int = 17,
    confusions: Sequence[Tuple[str, ...]] = CONFUSION_PAIRS,
) -> WordLattice:
    """Derive a recognition lattice from a reference sentence.

    Each reference word gets acoustic cost ~U(0.1, 0.4); with
    probability ``confusability`` a slot also receives its confusion
    set's other members at higher costs, the way an HMM front end
    ranks near-homophones.
    """
    rng = random.Random(seed)
    table: Dict[str, List[str]] = {}
    for group in confusions:
        for member in group:
            others = [w for w in group if w != member]
            table.setdefault(member, []).extend(
                w for w in others if w not in table.get(member, ())
            )
    lattice = WordLattice()
    for word in sentence.lower().split():
        alternatives = [
            WordHypothesis(word, round(rng.uniform(0.1, 0.4), 3))
        ]
        if rng.random() < confusability:
            for other in table.get(word, ())[: MAX_ALTERNATIVES - 1]:
                alternatives.append(
                    WordHypothesis(other, round(rng.uniform(0.5, 1.2), 3))
                )
        lattice.add_slot(alternatives)
    return lattice


@dataclass
class SpeechResult:
    """Outcome of understanding one utterance."""

    lattice: WordLattice
    #: Winning event hypothesis (concept-sequence root).
    winner: Optional[str]
    cost: Optional[float]
    candidates: List[Tuple[str, float]]
    time_us: float
    instruction_count: int
    #: β overlap-run sizes of the generated programs (the PASS numbers).
    beta_runs: List[int]

    @property
    def beta_max(self) -> float:
        """Largest overlap run (peak beta)."""
        return float(max(self.beta_runs)) if self.beta_runs else 0.0

    @property
    def beta_mean(self) -> float:
        """Mean overlap-run length."""
        if not self.beta_runs:
            return 0.0
        return sum(self.beta_runs) / len(self.beta_runs)


class SpeechParser:
    """Understands word lattices by parallel hypothesis evaluation."""

    def __init__(self, machine: Any, kb: DomainKB,
                 keep_trace: bool = False) -> None:
        self.machine = machine
        self.kb = kb
        self.keep_trace = keep_trace
        self.trace_log: List[Tuple[SnapProgram, Any]] = []

    def understand(self, lattice: WordLattice) -> SpeechResult:
        """Run the utterance through the array; return the reading."""
        time_us = 0.0
        instructions = 0
        beta_runs: List[int] = []

        def run(program: SnapProgram):
            """Run to completion; returns the result/report."""
            nonlocal time_us, instructions
            report = self.machine.run(program)
            if self.keep_trace:
                self.trace_log.append((program, report))
            beta_runs.extend(program.beta_profile())
            time_us += report.total_time_us
            instructions += len(report.traces)
            return report

        run(self._init_program())
        for slot in lattice.slots:
            alternatives = [
                h for h in slot if self.kb.has_word(h.word)
            ][:MAX_ALTERNATIVES]
            if not alternatives:
                continue
            run(self._slot_program(alternatives))
        report = run(self._final_program())
        collected = report.results()
        raw = collected[-1] if collected else []
        candidates = [
            (self.kb.network.node(gid).name, round(value, 4))
            for gid, value, _origin in raw
            if self.kb.network.node(gid).color == Color.CS_ROOT
        ]
        candidates.sort(key=lambda item: item[1])
        winner, cost = (candidates[0] if candidates else (None, None))
        return SpeechResult(
            lattice=lattice,
            winner=winner,
            cost=cost,
            candidates=candidates,
            time_us=time_us,
            instruction_count=instructions,
            beta_runs=beta_runs,
        )

    # ------------------------------------------------------------------
    def _init_program(self) -> SnapProgram:
        program = SnapProgram(name="speech-init")
        for marker in (M_PRED, M_CONF, M_DONE, M_HIST, M_ROOT, M_FIRST,
                       M_ELEM) + M_ACT_POOL + M_CLS_POOL:
            program.append(ClearMarker(marker))
        program.append(SearchColor(Color.CS_ROOT, M_ROOT, 0.0))
        program.append(SearchColor(Color.CS_AUX, M_ROOT, 0.0))
        program.append(
            Propagate(M_ROOT, M_FIRST, step("first"), "add-weight")
        )
        program.append(OrMarker(M_FIRST, M_FIRST, M_PRED, "first"))
        return program

    def _slot_program(
        self, alternatives: Sequence[WordHypothesis]
    ) -> SnapProgram:
        """Evaluate all of a slot's word hypotheses in parallel.

        Each alternative gets its own activation/class marker pair,
        seeded with the *acoustic cost* so the upward climb accumulates
        acoustic + link costs together; all climbs are
        marker-independent, so β equals the slot's branching factor.
        """
        program = SnapProgram(name="speech-slot")
        program.append(ClearMarker(M_ELEM))
        program.append(ClearMarker(M_CONF))
        merged = complex_marker(60)
        program.append(ClearMarker(merged))
        for i, hypothesis in enumerate(alternatives):
            program.append(ClearMarker(M_ACT_POOL[i]))
            program.append(ClearMarker(M_CLS_POOL[i]))
            program.append(
                SearchNode(
                    f"w:{hypothesis.word}", M_ACT_POOL[i],
                    hypothesis.acoustic_cost,
                )
            )
        for i in range(len(alternatives)):
            program.append(
                Propagate(
                    M_ACT_POOL[i], M_CLS_POOL[i], chain("is-a"),
                    "add-weight",
                )
            )
        # Competing hypotheses merge by minimum cost — the cheaper
        # acoustic reading wins wherever both activate a class.
        for i in range(len(alternatives)):
            program.append(
                OrMarker(M_CLS_POOL[i], merged, merged, "min")
            )
        program.append(
            Propagate(merged, M_ELEM, step("syntax-of"), "add-weight")
        )
        program.append(AndMarker(M_ELEM, M_PRED, M_CONF, "add"))
        program.append(OrMarker(M_CONF, M_HIST, M_HIST, "max"))
        # Advance predictions *without* dropping unconfirmed ones: a
        # speech slot may carry only function words or recognition
        # noise, so hypotheses tolerate gaps (unlike the text parser,
        # whose phrasal chunks guarantee content per segment).
        advanced = complex_marker(61)
        program.append(ClearMarker(advanced))
        program.append(
            Propagate(M_CONF, advanced, step("next"), "add-weight")
        )
        program.append(OrMarker(advanced, M_PRED, M_PRED, "min"))
        program.append(Propagate(M_CONF, M_DONE, step("last"), "add-weight"))
        program.append(OrMarker(M_PRED, M_FIRST, M_PRED, "first"))
        return program

    def _final_program(self) -> SnapProgram:
        program = SnapProgram(name="speech-final")
        program.append(CollectMarker(M_DONE))
        return program
