"""Concept classification by property intersection.

One of the applications used to validate the instruction set during
functional simulation (§II-B: *"NLU, concept classification, and
property inheritance applications were coded with these
instructions"*).  Classification answers: *which concepts exhibit all
of the given properties?* — each property floods the concepts that
have (or inherit) it, and an AND-tree of markers intersects the
floods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..isa.instructions import (
    AndMarker,
    ClearMarker,
    CollectNode,
    Propagate,
    SearchNode,
    complex_marker,
)
from ..isa.program import SnapProgram
from ..isa.rules import chain, seq

#: Marker bank used by classification programs (away from the NLU
#: parser's assignments so both can coexist on one machine).
M_BASE = 30
M_RESULT = complex_marker(46)


class ClassificationError(ValueError):
    """Raised for unusable queries."""


def classification_program(properties: Sequence[str]) -> SnapProgram:
    """Find concepts having *all* ``properties``.

    For each property ``p``: mark the property node, walk back along
    ``inverse:has-property``-like paths — concretely, owners are the
    sources of ``has-property`` links, so we mark owners by seeding
    the property node and traversing the *reverse* binding installed
    at KB build time (``binding-inverse``) or, in hierarchy KBs, by
    flooding downward from each owner.  The standard encoding used by
    our KBs is: owner --has-property--> p:prop, plus the hierarchy's
    ``inverse:is-a`` downward links, so a concept *exhibits* a property
    if one of its ancestors owns it.  The program therefore floods
    downward from direct owners and intersects the floods.
    """
    props = list(properties)
    if not props:
        raise ClassificationError("classification needs >= 1 property")
    if len(props) > 8:
        raise ClassificationError("at most 8 properties per query")

    program = SnapProgram(name="classification")
    program.append(ClearMarker(M_RESULT))
    flood_markers: List[int] = []
    for i, prop in enumerate(props):
        m_prop = complex_marker(M_BASE + 2 * i)
        m_flood = complex_marker(M_BASE + 2 * i + 1)
        flood_markers.append(m_flood)
        program.append(ClearMarker(m_prop))
        program.append(ClearMarker(m_flood))
        program.append(SearchNode(f"p:{prop}", m_prop, 0.0))
        # Owners sit one inverse hop from the property node; flooding
        # their subtrees marks every concept inheriting the property.
        program.append(
            Propagate(
                m_prop, m_flood,
                seq("inverse:has-property", "inverse:is-a"),
                "identity",
            )
        )
        program.append(
            Propagate(m_flood, m_flood, chain("inverse:is-a"), "identity")
        )
    # Intersect all floods.
    first = flood_markers[0]
    program.append(AndMarker(first, first, M_RESULT, "first"))
    for m_flood in flood_markers[1:]:
        program.append(AndMarker(M_RESULT, m_flood, M_RESULT, "first"))
    program.append(CollectNode(M_RESULT))
    return program


def install_property(network, owner: str, prop: str) -> None:
    """Attach a property with the reverse link classification needs."""
    prop_node = f"p:{prop}"
    network.ensure_node(prop_node)
    network.add_link(owner, "has-property", prop_node, 1.0)
    network.add_link(prop_node, "inverse:has-property", owner, 1.0)


@dataclass
class ClassificationResult:
    """Concepts matching a property query, with timing."""

    properties: Tuple[str, ...]
    matches: List[str]
    time_us: float


def classify(machine: Any, properties: Sequence[str]) -> ClassificationResult:
    """Run a classification query on any machine."""
    report = machine.run(classification_program(properties))
    results = report.results()
    names = [name for _gid, name in (results[-1] if results else [])]
    return ClassificationResult(
        properties=tuple(properties),
        matches=names,
        time_us=report.total_time_us,
    )
