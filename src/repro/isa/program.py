"""SNAP programs: containers, assembler, and dependency analysis.

Application programs are *"written and compiled on the host using C
language and high-level SNAP instructions"* and downloaded whole to the
controller (§II-A).  Here a :class:`SnapProgram` is the downloaded
instruction stream; a small assembler gives examples/tests a readable
source syntax; and static marker-dependency analysis computes the
inter-propagation (β) overlap structure the controller exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .instructions import (
    AndMarker,
    Category,
    ClearMarker,
    CollectColor,
    CollectMarker,
    CollectNode,
    CollectRelation,
    Create,
    Delete,
    FuncMarker,
    Instruction,
    InstructionError,
    MarkerCreate,
    MarkerDelete,
    MarkerSetColor,
    NotMarker,
    OrMarker,
    Propagate,
    SearchColor,
    SearchNode,
    SearchRelation,
    SetColor,
    SetMarker,
    binary_marker,
    complex_marker,
)
from .rules import parse_rule


class ProgramError(ValueError):
    """Raised for malformed program source."""


@dataclass
class SnapProgram:
    """An ordered SNAP instruction stream with analysis helpers."""

    instructions: List[Instruction] = field(default_factory=list)
    name: str = "program"

    def append(self, instruction: Instruction) -> "SnapProgram":
        """Append one instruction; returns self for chaining."""
        self.instructions.append(instruction)
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "SnapProgram":
        """Append many instructions; returns self for chaining."""
        self.instructions.extend(instructions)
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    # -- profiling helpers ------------------------------------------------
    def category_counts(self) -> Dict[str, int]:
        """Instruction counts per category (Fig. 6 horizontal axis)."""
        counts: Dict[str, int] = {}
        for instr in self.instructions:
            counts[instr.category] = counts.get(instr.category, 0) + 1
        return counts

    def markers_used(self) -> Set[int]:
        """All marker ids the program touches."""
        used: Set[int] = set()
        for instr in self.instructions:
            used.update(instr.reads())
            used.update(instr.writes())
        return used

    # -- dependency analysis ------------------------------------------------
    def depends(self, earlier: Instruction, later: Instruction) -> bool:
        """True if ``later`` must wait for ``earlier`` (RAW/WAW/WAR)."""
        ew, er = set(earlier.writes()), set(earlier.reads())
        lw, lr = set(later.writes()), set(later.reads())
        return bool(ew & (lr | lw)) or bool(er & lw)

    def dependency_edges(self) -> List[Tuple[int, int]]:
        """All (i, j) pairs with i < j and a marker dependency."""
        edges = []
        for j, later in enumerate(self.instructions):
            for i in range(j):
                if self.depends(self.instructions[i], later):
                    edges.append((i, j))
        return edges

    def beta_profile(self) -> List[int]:
        """Sizes of maximal runs of overlappable PROPAGATE instructions.

        β-parallelism *"exists between L4 and L5 since there are no data
        dependencies in the markers used"* (§II-C).  A run grows while
        consecutive PROPAGATEs are mutually independent; any dependent
        instruction (or a collect, which forces a barrier) ends it.
        """
        runs: List[int] = []
        current: List[Instruction] = []

        def close() -> None:
            if current:
                runs.append(len(current))
                current.clear()

        for instr in self.instructions:
            if isinstance(instr, Propagate):
                if any(
                    self.depends(prev, instr) for prev in current
                ):
                    close()
                current.append(instr)
            elif instr.category in (Category.SEARCH, Category.SETCLEAR):
                # Configuration ops only end a run if dependent.
                if any(self.depends(prev, instr) for prev in current):
                    close()
            else:
                close()
        close()
        return runs

    def beta_stats(self) -> Dict[str, float]:
        """min / max / mean β over the program's overlap runs."""
        runs = self.beta_profile()
        if not runs:
            return {"min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "min": float(min(runs)),
            "max": float(max(runs)),
            "mean": sum(runs) / len(runs),
        }


# ----------------------------------------------------------------------
# Assembler
# ----------------------------------------------------------------------
def _parse_marker(token: str) -> int:
    """``m<k>`` = complex marker k; ``b<k>`` = binary marker k."""
    if len(token) >= 2 and token[0] in "mb":
        try:
            index = int(token[1:])
        except ValueError:
            raise ProgramError(f"bad marker token: {token!r}") from None
        return complex_marker(index) if token[0] == "m" else binary_marker(index)
    raise ProgramError(f"bad marker token: {token!r}")


def _parse_value(token: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise ProgramError(f"bad numeric operand: {token!r}") from None


def _split_operands(text: str) -> List[str]:
    """Split on whitespace/commas, keeping rule parentheses intact."""
    out: List[str] = []
    depth = 0
    token = ""
    for ch in text:
        if ch == "(":
            depth += 1
            token += ch
        elif ch == ")":
            depth -= 1
            token += ch
        elif ch in " \t," and depth == 0:
            if token:
                out.append(token)
                token = ""
        else:
            token += ch
    if token:
        out.append(token)
    return out


def assemble_line(line: str) -> Optional[Instruction]:
    """Assemble one source line; returns None for blanks/comments."""
    code = line.split("#", 1)[0].split(";", 1)[0].strip()
    if not code:
        return None
    parts = _split_operands(code)
    opcode, ops = parts[0].upper(), parts[1:]

    def need(n: int) -> None:
        if len(ops) < n:
            raise ProgramError(
                f"{opcode} needs {n} operands, got {len(ops)}: {line!r}"
            )

    if opcode == "CREATE":
        need(4)
        return Create(ops[0], ops[1], _parse_value(ops[2]), ops[3])
    if opcode == "DELETE":
        need(3)
        return Delete(ops[0], ops[1], ops[2])
    if opcode == "SET-COLOR":
        need(2)
        return SetColor(ops[0], int(ops[1]))
    if opcode == "SEARCH-NODE":
        need(2)
        value = _parse_value(ops[2]) if len(ops) > 2 else 0.0
        return SearchNode(ops[0], _parse_marker(ops[1]), value)
    if opcode == "SEARCH-RELATION":
        need(2)
        value = _parse_value(ops[2]) if len(ops) > 2 else 0.0
        return SearchRelation(ops[0], _parse_marker(ops[1]), value)
    if opcode == "SEARCH-COLOR":
        need(2)
        value = _parse_value(ops[2]) if len(ops) > 2 else 0.0
        return SearchColor(int(ops[0]), _parse_marker(ops[1]), value)
    if opcode == "PROPAGATE":
        need(3)
        function = ops[3] if len(ops) > 3 else "identity"
        return Propagate(
            _parse_marker(ops[0]),
            _parse_marker(ops[1]),
            parse_rule(ops[2]),
            function,
        )
    if opcode == "MARKER-CREATE":
        need(3)
        reverse = ops[3] if len(ops) > 3 else None
        return MarkerCreate(_parse_marker(ops[0]), ops[1], ops[2], reverse)
    if opcode == "MARKER-DELETE":
        need(3)
        reverse = ops[3] if len(ops) > 3 else None
        return MarkerDelete(_parse_marker(ops[0]), ops[1], ops[2], reverse)
    if opcode == "MARKER-SET-COLOR":
        need(2)
        return MarkerSetColor(_parse_marker(ops[0]), int(ops[1]))
    if opcode == "AND-MARKER":
        need(3)
        function = ops[3] if len(ops) > 3 else "first"
        return AndMarker(
            _parse_marker(ops[0]),
            _parse_marker(ops[1]),
            _parse_marker(ops[2]),
            function,
        )
    if opcode == "OR-MARKER":
        need(3)
        function = ops[3] if len(ops) > 3 else "first"
        return OrMarker(
            _parse_marker(ops[0]),
            _parse_marker(ops[1]),
            _parse_marker(ops[2]),
            function,
        )
    if opcode == "NOT-MARKER":
        need(2)
        value = _parse_value(ops[2]) if len(ops) > 2 else 0.0
        cond = ops[3] if len(ops) > 3 else "always"
        return NotMarker(
            _parse_marker(ops[0]), _parse_marker(ops[1]), value, cond
        )
    if opcode == "SET-MARKER":
        need(1)
        value = _parse_value(ops[1]) if len(ops) > 1 else 0.0
        return SetMarker(_parse_marker(ops[0]), value)
    if opcode == "CLEAR-MARKER":
        need(1)
        return ClearMarker(_parse_marker(ops[0]))
    if opcode == "FUNC-MARKER":
        need(1)
        function = ops[1] if len(ops) > 1 else "identity"
        return FuncMarker(_parse_marker(ops[0]), function)
    if opcode == "COLLECT-NODE":
        need(1)
        return CollectNode(_parse_marker(ops[0]))
    if opcode == "COLLECT-MARKER":
        need(1)
        return CollectMarker(_parse_marker(ops[0]))
    if opcode == "COLLECT-RELATION":
        need(2)
        return CollectRelation(_parse_marker(ops[0]), ops[1])
    if opcode == "COLLECT-COLOR":
        need(1)
        return CollectColor(_parse_marker(ops[0]))
    raise ProgramError(f"unknown opcode: {opcode!r}")


def assemble(source: str, name: str = "program") -> SnapProgram:
    """Assemble multi-line source text into a :class:`SnapProgram`."""
    program = SnapProgram(name=name)
    for lineno, line in enumerate(source.splitlines(), start=1):
        try:
            instr = assemble_line(line)
        except (ProgramError, InstructionError) as exc:
            raise ProgramError(f"line {lineno}: {exc}") from exc
        if instr is not None:
            program.append(instr)
    return program


def marker_name(marker: int) -> str:
    """Inverse of the assembler's marker syntax."""
    from .instructions import NUM_COMPLEX_MARKERS, is_complex

    if is_complex(marker):
        return f"m{marker}"
    return f"b{marker - NUM_COMPLEX_MARKERS}"


def disassemble(program: SnapProgram) -> str:
    """Render a program back to assembler syntax (round-trippable)."""
    lines: List[str] = []
    for instr in program:
        ops: List[str] = []
        if isinstance(instr, Create):
            ops = [str(instr.source), instr.relation, str(instr.weight),
                   str(instr.end)]
        elif isinstance(instr, Delete):
            ops = [str(instr.source), instr.relation, str(instr.end)]
        elif isinstance(instr, SetColor):
            ops = [str(instr.node), str(instr.color)]
        elif isinstance(instr, SearchNode):
            ops = [str(instr.node), marker_name(instr.marker),
                   str(instr.value)]
        elif isinstance(instr, SearchRelation):
            ops = [instr.relation, marker_name(instr.marker),
                   str(instr.value)]
        elif isinstance(instr, SearchColor):
            ops = [str(instr.color), marker_name(instr.marker),
                   str(instr.value)]
        elif isinstance(instr, Propagate):
            ops = [marker_name(instr.marker1), marker_name(instr.marker2),
                   str(instr.rule), str(instr.function)]
        elif isinstance(instr, (MarkerCreate, MarkerDelete)):
            ops = [marker_name(instr.marker), instr.forward, str(instr.end)]
            if instr.reverse:
                ops.append(instr.reverse)
        elif isinstance(instr, MarkerSetColor):
            ops = [marker_name(instr.marker), str(instr.color)]
        elif isinstance(instr, (AndMarker, OrMarker)):
            ops = [marker_name(instr.marker1), marker_name(instr.marker2),
                   marker_name(instr.marker3), str(instr.function)]
        elif isinstance(instr, NotMarker):
            ops = [marker_name(instr.marker1), marker_name(instr.marker2),
                   str(instr.value), instr.condition]
        elif isinstance(instr, SetMarker):
            ops = [marker_name(instr.marker), str(instr.value)]
        elif isinstance(instr, (ClearMarker, CollectNode, CollectMarker,
                                CollectColor)):
            ops = [marker_name(instr.marker)]
        elif isinstance(instr, FuncMarker):
            ops = [marker_name(instr.marker), str(instr.function)]
        elif isinstance(instr, CollectRelation):
            ops = [marker_name(instr.marker), instr.relation]
        lines.append(" ".join([instr.opcode] + ops))
    return "\n".join(lines)
