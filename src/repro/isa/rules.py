"""Propagation rules.

*"Propagation rules have the format of rule-type(r1,r2).  The
pre-defined or custom rule-type guides the flow of markers.  It
specifies a traversal strategy for passing through relations r1 and
r2.  For example, the propagation rule spread(r1,r2) sends markers
along a chain of r1 links until a link of type r2 is encountered at
which time they switch to r2"* (paper §II-B).

A rule is a finite state machine over relation names: from the current
state, the rule lists which relations a marker may traverse and the
state it enters after each.  The engine tracks (node, state) visited
pairs, so propagation terminates on cyclic networks.

Pre-defined rule types:

``spread(r1, r2)``
    follow ``r1*`` then switch permanently to ``r2*`` — the workhorse
    of Fig. 5 (``spread(is-a, last)``).
``seq(r1, r2)``
    exactly one ``r1`` hop then one ``r2`` hop.
``comb(r1, r2)``
    any interleaving of ``r1`` and ``r2`` links.
``chain(r)``
    follow ``r*`` (equivalent to ``spread(r, r)``).
``step(r)``
    exactly one ``r`` hop.

Custom rules supply an explicit transition table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple


class RuleError(ValueError):
    """Raised for malformed propagation rules."""


#: A transition table: state -> ((relation-name, next-state), ...).
TransitionTable = Mapping[int, Sequence[Tuple[str, int]]]


@dataclass(frozen=True)
class PropagationRule:
    """A compiled propagation-rule state machine.

    ``rule_type`` and the relation arguments preserve the source form
    (for disassembly and message encoding); ``table`` drives traversal.
    """

    rule_type: str
    relations: Tuple[str, ...]
    table: Mapping[int, Tuple[Tuple[str, int], ...]]
    initial_state: int = 0

    def __post_init__(self) -> None:
        if self.initial_state not in self.table:
            raise RuleError(
                f"initial state {self.initial_state} missing from table"
            )
        for state, transitions in self.table.items():
            for relation, nxt in transitions:
                if nxt not in self.table:
                    raise RuleError(
                        f"transition {state}--{relation}-->{nxt} targets "
                        f"unknown state"
                    )

    def moves(self, state: int) -> Tuple[Tuple[str, int], ...]:
        """Allowed (relation, next-state) moves from ``state``."""
        return tuple(self.table.get(state, ()))

    def is_terminal(self, state: int) -> bool:
        """True when no further traversal is possible from ``state``."""
        return not self.table.get(state)

    @property
    def num_states(self) -> int:
        """Number of states in the rule's transition table."""
        return len(self.table)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        args = ", ".join(self.relations)
        return f"{self.rule_type}({args})"


def _freeze(table: TransitionTable) -> Dict[int, Tuple[Tuple[str, int], ...]]:
    return {state: tuple(moves) for state, moves in table.items()}


def spread(r1: str, r2: str) -> PropagationRule:
    """``r1*`` then switch to ``r2*`` on first ``r2`` link encountered."""
    table = {
        0: ((r1, 0), (r2, 1)),
        1: ((r2, 1),),
    }
    return PropagationRule("spread", (r1, r2), _freeze(table))


def seq(r1: str, r2: str) -> PropagationRule:
    """Exactly one ``r1`` hop followed by exactly one ``r2`` hop."""
    table = {
        0: ((r1, 1),),
        1: ((r2, 2),),
        2: (),
    }
    return PropagationRule("seq", (r1, r2), _freeze(table))


def comb(r1: str, r2: str) -> PropagationRule:
    """Any interleaving of ``r1`` and ``r2`` links."""
    table = {0: ((r1, 0), (r2, 0))}
    return PropagationRule("comb", (r1, r2), _freeze(table))


def chain(r: str) -> PropagationRule:
    """Unbounded traversal of a single relation type."""
    table = {0: ((r, 0),)}
    return PropagationRule("chain", (r,), _freeze(table))


def step(r: str) -> PropagationRule:
    """A single hop of relation ``r``."""
    table = {0: ((r, 1),), 1: ()}
    return PropagationRule("step", (r,), _freeze(table))


def custom(
    name: str, relations: Sequence[str], table: TransitionTable
) -> PropagationRule:
    """Build a custom rule from an explicit transition table."""
    return PropagationRule(name, tuple(relations), _freeze(table))


#: Factories for the pre-defined rule types, by source syntax name.
RULE_TYPES = {
    "spread": spread,
    "seq": seq,
    "comb": comb,
    "chain": chain,
    "step": step,
}


def parse_rule(text: str) -> PropagationRule:
    """Parse source syntax like ``spread(is-a, last)`` into a rule."""
    text = text.strip()
    open_paren = text.find("(")
    if open_paren == -1 or not text.endswith(")"):
        raise RuleError(f"malformed rule syntax: {text!r}")
    rule_type = text[:open_paren].strip()
    args = [a.strip() for a in text[open_paren + 1: -1].split(",") if a.strip()]
    factory = RULE_TYPES.get(rule_type)
    if factory is None:
        raise RuleError(
            f"unknown rule type {rule_type!r}; "
            f"choose from {sorted(RULE_TYPES)}"
        )
    try:
        return factory(*args)
    except TypeError:
        raise RuleError(
            f"rule {rule_type!r} given {len(args)} relations"
        ) from None


def max_path_states(rule: PropagationRule) -> int:
    """Upper bound on distinct states a marker can pass through.

    Used by the engine to size visited-set bookkeeping.
    """
    return rule.num_states
