"""Marker register allocation.

SNAP programs juggle a fixed register file of 64 complex and 64 binary
markers (Fig. 4).  Hand-assigning constants works for one program, but
applications that compose (the NLU parser + speech parser +
inferencing queries sharing one machine) need disciplined allocation —
this is the compile-time bookkeeping the host compiler performed.

:class:`MarkerAllocator` hands out named registers, tracks liveness,
and raises when the file is exhausted; :meth:`scope` gives RAII-style
temporaries for program builders.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set

from .instructions import (
    NUM_BINARY_MARKERS,
    NUM_COMPLEX_MARKERS,
    binary_marker,
    complex_marker,
    is_complex,
)


class AllocationError(RuntimeError):
    """Raised when the marker register file is exhausted or misused."""


class MarkerAllocator:
    """Named allocation over the 64 + 64 marker register file."""

    def __init__(
        self,
        reserved: Optional[Set[int]] = None,
    ) -> None:
        """``reserved`` marker ids are never handed out (e.g. the NLU
        parser's fixed bank when composing with other programs)."""
        self._reserved = set(reserved or ())
        self._by_name: Dict[str, int] = {}
        self._owner: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def _next_free(self, complex_: bool) -> int:
        count = NUM_COMPLEX_MARKERS if complex_ else NUM_BINARY_MARKERS
        make = complex_marker if complex_ else binary_marker
        for index in range(count):
            marker = make(index)
            if marker in self._reserved or marker in self._owner:
                continue
            return marker
        kind = "complex" if complex_ else "binary"
        raise AllocationError(f"{kind} marker registers exhausted")

    def complex(self, name: str) -> int:
        """Allocate a named complex (valued) marker."""
        return self._claim(name, self._next_free(complex_=True))

    def binary(self, name: str) -> int:
        """Allocate a named binary marker."""
        return self._claim(name, self._next_free(complex_=False))

    def _claim(self, name: str, marker: int) -> int:
        if name in self._by_name:
            raise AllocationError(f"marker name already in use: {name!r}")
        self._by_name[name] = marker
        self._owner[marker] = name
        return marker

    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise AllocationError(f"unknown marker name: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def name_of(self, marker: int) -> Optional[str]:
        """Name for an id (None/generic when unknown)."""
        return self._owner.get(marker)

    def free(self, name: str) -> int:
        """Release a named marker; returns the freed id."""
        try:
            marker = self._by_name.pop(name)
        except KeyError:
            raise AllocationError(f"unknown marker name: {name!r}") from None
        del self._owner[marker]
        return marker

    def live(self) -> List[str]:
        """Currently allocated names."""
        return sorted(self._by_name)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Checkpoint the current name→marker assignment.

        Program builders that retry after a fault (e.g. re-assembling a
        degraded-machine variant) can roll the register file back with
        :meth:`restore` instead of leaking temporaries.
        """
        return dict(self._by_name)

    def restore(self, snapshot: Dict[str, int]) -> None:
        """Reset the allocation state to a :meth:`snapshot`."""
        self._by_name = dict(snapshot)
        self._owner = {m: n for n, m in self._by_name.items()}

    @property
    def free_complex(self) -> int:
        """Unallocated complex registers remaining."""
        used = sum(
            1 for m in self._owner if is_complex(m)
        ) + sum(1 for m in self._reserved if is_complex(m))
        return NUM_COMPLEX_MARKERS - used

    @property
    def free_binary(self) -> int:
        """Unallocated binary registers remaining."""
        used = sum(
            1 for m in self._owner if not is_complex(m)
        ) + sum(1 for m in self._reserved if not is_complex(m))
        return NUM_BINARY_MARKERS - used

    # ------------------------------------------------------------------
    @contextmanager
    def scope(self, *names: str, binary: bool = False) -> Iterator[List[int]]:
        """Temporaries freed automatically at scope exit.

        >>> alloc = MarkerAllocator()
        >>> with alloc.scope("tmp1", "tmp2") as (a, b):
        ...     pass
        >>> alloc.live()
        []
        """
        markers = [
            self.binary(name) if binary else self.complex(name)
            for name in names
        ]
        try:
            yield markers
        finally:
            for name in names:
                if name in self._by_name:
                    self.free(name)
