"""Marker arithmetic/logic functions.

Markers *"carry a lightweight arithmetic or logical operation which is
performed along each propagation step ... to update values or
influence the status of other markers"* (paper §I-C).  Because the
microcode table of functions is downloaded at compile time, *"each
marker only needs to carry a single-byte token indicating the function
to be performed"* (§III-B) — so functions are identified by 8-bit
tokens and resolved through a :class:`FunctionRegistry`.

Three kinds of functions exist, matching the instruction set:

* **hop functions** — applied at every link traversal during
  PROPAGATE: ``new_value = f(value, link_weight)``, plus a liveness
  predicate that can kill a marker (thresholding);
* **combine functions** — used by AND-MARKER / OR-MARKER to merge the
  values of two source markers into the result marker;
* **unary functions** — applied by FUNC-MARKER to a marker's value at
  every node where it is set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

#: Function tokens are a single byte (paper §III-B).
MAX_FUNCTION_TOKENS = 256


class FunctionError(ValueError):
    """Raised for unknown tokens or exhausted token space."""


def always_alive(value: float) -> bool:
    """Default liveness predicate: the marker never dies on a hop.

    A module-level function (not a per-instance lambda) so backends can
    recognise "no thresholding" by identity and skip the predicate
    entirely on bulk paths.
    """
    return True


@dataclass(frozen=True)
class HopFunction:
    """Per-hop update applied as a marker traverses a link."""

    name: str
    combine: Callable[[float, float], float]
    #: Marker survives the hop only while this holds; used for cost
    #: thresholding during hypothesis evaluation.
    alive: Callable[[float], bool] = always_alive
    #: Optional bulk forms over float64 numpy arrays, used by the
    #: vectorized propagation backend: ``vapply(values, weights)``
    #: and ``valive(values)``.  The scalar forms stay authoritative;
    #: a bulk form must be bit-identical to mapping the scalar one.
    vapply: Optional[Callable] = None
    valive: Optional[Callable] = None

    def apply(self, value: float, weight: float) -> float:
        """Apply the per-hop update: f(value, link weight)."""
        return self.combine(value, weight)


@dataclass(frozen=True)
class CombineFunction:
    """Binary merge of two marker values (boolean instructions)."""

    name: str
    combine: Callable[[float, float], float]


@dataclass(frozen=True)
class UnaryFunction:
    """Value rewrite applied by FUNC-MARKER."""

    name: str
    apply: Callable[[float], float]


class FunctionRegistry:
    """Token ↔ function tables for the three function kinds.

    Standard functions occupy fixed low tokens; applications may
    register custom functions (e.g. parameterized thresholds) which
    receive the next free token.
    """

    def __init__(self) -> None:
        self._hop: Dict[int, HopFunction] = {}
        self._combine: Dict[int, CombineFunction] = {}
        self._unary: Dict[int, UnaryFunction] = {}
        self._hop_by_name: Dict[str, int] = {}
        self._combine_by_name: Dict[str, int] = {}
        self._unary_by_name: Dict[str, int] = {}
        self._install_standard()

    # -- registration ---------------------------------------------------
    def _next_token(self, table: Dict[int, object]) -> int:
        token = len(table)
        if token >= MAX_FUNCTION_TOKENS:
            raise FunctionError("function token space exhausted (256)")
        return token

    def register_hop(self, fn: HopFunction) -> int:
        """Register a hop function; returns its token (idempotent by name)."""
        if fn.name in self._hop_by_name:
            return self._hop_by_name[fn.name]
        token = self._next_token(self._hop)
        self._hop[token] = fn
        self._hop_by_name[fn.name] = token
        return token

    def register_combine(self, fn: CombineFunction) -> int:
        """Register a combine function; returns its token."""
        if fn.name in self._combine_by_name:
            return self._combine_by_name[fn.name]
        token = self._next_token(self._combine)
        self._combine[token] = fn
        self._combine_by_name[fn.name] = token
        return token

    def register_unary(self, fn: UnaryFunction) -> int:
        """Register a unary function; returns its token."""
        if fn.name in self._unary_by_name:
            return self._unary_by_name[fn.name]
        token = self._next_token(self._unary)
        self._unary[token] = fn
        self._unary_by_name[fn.name] = token
        return token

    # -- lookup -----------------------------------------------------------
    def hop(self, ref) -> HopFunction:
        """Resolve a hop function by token or name."""
        return self._lookup(ref, self._hop, self._hop_by_name, "hop")

    def combine(self, ref) -> CombineFunction:
        """Resolve a combine function by token or name."""
        return self._lookup(ref, self._combine, self._combine_by_name, "combine")

    def unary(self, ref) -> UnaryFunction:
        """Resolve a unary function by token or name."""
        return self._lookup(ref, self._unary, self._unary_by_name, "unary")

    def hop_token(self, name: str) -> int:
        """Token of a named hop function."""
        if name not in self._hop_by_name:
            raise FunctionError(f"unknown hop function: {name!r}")
        return self._hop_by_name[name]

    def _lookup(self, ref, table: Dict, by_name: Dict, kind: str):
        if isinstance(ref, str):
            if ref not in by_name:
                raise FunctionError(f"unknown {kind} function: {ref!r}")
            return table[by_name[ref]]
        if ref not in table:
            raise FunctionError(f"unknown {kind} function token: {ref}")
        return table[ref]

    # -- standard library -----------------------------------------------
    def _install_standard(self) -> None:
        for fn in STANDARD_HOP_FUNCTIONS:
            self.register_hop(fn)
        for cfn in STANDARD_COMBINE_FUNCTIONS:
            self.register_combine(cfn)
        for ufn in STANDARD_UNARY_FUNCTIONS:
            self.register_unary(ufn)

    def make_threshold(self, limit: float, below: bool = True) -> int:
        """Register an add-weight hop function with a survival threshold.

        With ``below=True`` the marker dies once its accumulated cost
        exceeds ``limit`` — the paper's "cost of accepting a particular
        concept sequence" cut-off.
        """
        name = f"add-weight<{'=' if below else '>'}{limit}"
        # The comparisons broadcast over numpy arrays unchanged, so the
        # scalar predicate doubles as the bulk form.
        predicate = (
            (lambda value: value <= limit)
            if below
            else (lambda value: value >= limit)
        )
        return self.register_hop(
            HopFunction(
                name,
                lambda v, w: v + w,
                predicate,
                vapply=lambda v, w: v + w,
                valive=predicate,
            )
        )


#: Hop functions available to every program.  ``min``/``max`` bulk
#: forms use explicit ``np.where`` comparisons so argument-order
#: semantics (which operand wins a tie, e.g. signed zeros) match the
#: Python builtins exactly.
STANDARD_HOP_FUNCTIONS = (
    HopFunction("identity", lambda v, w: v,
                vapply=lambda v, w: v),
    HopFunction("add-weight", lambda v, w: v + w,
                vapply=lambda v, w: v + w),
    HopFunction("sub-weight", lambda v, w: v - w,
                vapply=lambda v, w: v - w),
    HopFunction("mul-weight", lambda v, w: v * w,
                vapply=lambda v, w: v * w),
    HopFunction("min-weight", lambda v, w: min(v, w),
                vapply=lambda v, w: np.where(w < v, w, v)),
    HopFunction("max-weight", lambda v, w: max(v, w),
                vapply=lambda v, w: np.where(w > v, w, v)),
    HopFunction("count-hops", lambda v, w: v + 1.0,
                vapply=lambda v, w: v + 1.0),
)

#: Token of the default hop function (identity).
DEFAULT_HOP = 0

STANDARD_COMBINE_FUNCTIONS = (
    CombineFunction("first", lambda a, b: a),
    CombineFunction("second", lambda a, b: b),
    CombineFunction("add", lambda a, b: a + b),
    CombineFunction("min", lambda a, b: min(a, b)),
    CombineFunction("max", lambda a, b: max(a, b)),
    CombineFunction("mul", lambda a, b: a * b),
)

#: Token of the default combine function (take first operand's value).
DEFAULT_COMBINE = 0

STANDARD_UNARY_FUNCTIONS = (
    UnaryFunction("identity", lambda v: v),
    UnaryFunction("zero", lambda v: 0.0),
    UnaryFunction("negate", lambda v: -v),
    UnaryFunction("increment", lambda v: v + 1.0),
    UnaryFunction("reciprocal", lambda v: math.inf if v == 0 else 1.0 / v),
)

#: Token of the default unary function (identity).
DEFAULT_UNARY = 0


#: Comparison conditions for NOT-MARKER's (value, condition) operands.
CONDITIONS: Dict[str, Callable[[float, float], bool]] = {
    "always": lambda v, ref: True,
    "eq": lambda v, ref: v == ref,
    "ne": lambda v, ref: v != ref,
    "lt": lambda v, ref: v < ref,
    "le": lambda v, ref: v <= ref,
    "gt": lambda v, ref: v > ref,
    "ge": lambda v, ref: v >= ref,
}


def condition(name: str) -> Callable[[float, float], bool]:
    """Look up a comparison condition by name."""
    try:
        return CONDITIONS[name]
    except KeyError:
        raise FunctionError(f"unknown condition: {name!r}") from None
