"""The SNAP marker-propagation instruction set (paper Table II).

Twenty high-level instructions over logical markers, relations, and
nodes; propagation-rule state machines; per-hop marker functions; and
program containers with the assembler and marker-dependency analysis
used to measure β-parallelism.
"""

from .functions import (
    CONDITIONS,
    CombineFunction,
    DEFAULT_COMBINE,
    DEFAULT_HOP,
    DEFAULT_UNARY,
    FunctionError,
    FunctionRegistry,
    HopFunction,
    MAX_FUNCTION_TOKENS,
    STANDARD_COMBINE_FUNCTIONS,
    STANDARD_HOP_FUNCTIONS,
    STANDARD_UNARY_FUNCTIONS,
    UnaryFunction,
    condition,
)
from .rules import (
    PropagationRule,
    RULE_TYPES,
    RuleError,
    chain,
    comb,
    custom,
    parse_rule,
    seq,
    spread,
    step,
)
from .instructions import (
    AndMarker,
    Category,
    ClearMarker,
    CollectColor,
    CollectMarker,
    CollectNode,
    CollectRelation,
    Create,
    Delete,
    FuncMarker,
    INSTRUCTION_SET,
    Instruction,
    InstructionError,
    MarkerCreate,
    MarkerDelete,
    MarkerSetColor,
    NotMarker,
    NUM_BINARY_MARKERS,
    NUM_COMPLEX_MARKERS,
    NUM_MARKERS,
    OPCODES,
    OrMarker,
    Propagate,
    SearchColor,
    SearchNode,
    SearchRelation,
    SetColor,
    SetMarker,
    binary_marker,
    check_marker,
    complex_marker,
    is_complex,
)
from .program import (
    ProgramError,
    SnapProgram,
    assemble,
    assemble_line,
    disassemble,
    marker_name,
)
from .allocator import AllocationError, MarkerAllocator

__all__ = [
    # functions
    "CONDITIONS", "CombineFunction", "DEFAULT_COMBINE", "DEFAULT_HOP",
    "DEFAULT_UNARY", "FunctionError", "FunctionRegistry", "HopFunction",
    "MAX_FUNCTION_TOKENS", "STANDARD_COMBINE_FUNCTIONS",
    "STANDARD_HOP_FUNCTIONS", "STANDARD_UNARY_FUNCTIONS", "UnaryFunction",
    "condition",
    # rules
    "PropagationRule", "RULE_TYPES", "RuleError", "chain", "comb",
    "custom", "parse_rule", "seq", "spread", "step",
    # instructions
    "AndMarker", "Category", "ClearMarker", "CollectColor",
    "CollectMarker", "CollectNode", "CollectRelation", "Create",
    "Delete", "FuncMarker", "INSTRUCTION_SET", "Instruction",
    "InstructionError", "MarkerCreate", "MarkerDelete", "MarkerSetColor",
    "NotMarker", "NUM_BINARY_MARKERS", "NUM_COMPLEX_MARKERS",
    "NUM_MARKERS", "OPCODES", "OrMarker", "Propagate", "SearchColor",
    "SearchNode", "SearchRelation", "SetColor", "SetMarker",
    "binary_marker", "check_marker", "complex_marker", "is_complex",
    # program
    "ProgramError", "SnapProgram", "assemble", "assemble_line",
    "disassemble", "marker_name",
    # allocator
    "AllocationError", "MarkerAllocator",
]
