"""The 20-instruction SNAP marker-propagation ISA (paper Table II).

Instructions are small immutable dataclasses.  Operands are symbolic —
node names or ids, relation names, marker ids, rule objects, function
names — and are resolved against the loaded knowledge base when the
instruction executes.  *"The programmer deals with logical data
structures such as markers, relations, and nodes.  Their physical
allocation remains transparent"* (§II-B).

Markers: 64 **complex** markers (ids 0–63) carry a 32-bit float value
and a 15-bit origin address; 64 **binary** markers (ids 64–127) carry
set-membership only (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple, Union

from .rules import PropagationRule

#: Marker register file sizes (paper Fig. 4).
NUM_COMPLEX_MARKERS = 64
NUM_BINARY_MARKERS = 64
NUM_MARKERS = NUM_COMPLEX_MARKERS + NUM_BINARY_MARKERS


class InstructionError(ValueError):
    """Raised for malformed instructions."""


def complex_marker(index: int) -> int:
    """Marker id of the ``index``-th complex (valued) marker."""
    if not 0 <= index < NUM_COMPLEX_MARKERS:
        raise InstructionError(f"complex marker index out of range: {index}")
    return index


def binary_marker(index: int) -> int:
    """Marker id of the ``index``-th binary (set-membership) marker."""
    if not 0 <= index < NUM_BINARY_MARKERS:
        raise InstructionError(f"binary marker index out of range: {index}")
    return NUM_COMPLEX_MARKERS + index


def is_complex(marker: int) -> bool:
    """True when ``marker`` carries a floating-point value."""
    return 0 <= marker < NUM_COMPLEX_MARKERS


def check_marker(marker: int) -> int:
    """Validate a marker id; return it."""
    if not 0 <= marker < NUM_MARKERS:
        raise InstructionError(f"marker id out of range: {marker}")
    return marker


NodeOperand = Union[int, str]


#: Instruction categories used throughout the performance figures
#: (Figs. 6, 18, 19, 20): the paper profiles time and counts by class.
class Category:
    """Instruction categories used by the performance figures."""
    MAINTENANCE = "maintenance"
    SEARCH = "search"
    PROPAGATE = "propagate"
    MARKER_MAINT = "marker-maint"
    BOOLEAN = "boolean"
    SETCLEAR = "setclear"
    COLLECT = "collect"

    ALL = (
        MAINTENANCE,
        SEARCH,
        PROPAGATE,
        MARKER_MAINT,
        BOOLEAN,
        SETCLEAR,
        COLLECT,
    )


@dataclass(frozen=True)
class Instruction:
    """Base class for all SNAP instructions."""

    opcode: ClassVar[str] = "?"
    category: ClassVar[str] = "?"

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads (dependency analysis)."""
        return ()

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return ()


# ----------------------------------------------------------------------
# Node maintenance
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Create(Instruction):
    """CREATE source-node, relation, weight, end-node.

    Loads one link of the knowledge base; creates missing nodes.
    """

    source: NodeOperand
    relation: str
    weight: float
    end: NodeOperand
    color: int = 0

    opcode: ClassVar[str] = "CREATE"
    category: ClassVar[str] = Category.MAINTENANCE


@dataclass(frozen=True)
class Delete(Instruction):
    """DELETE source-node, relation, end-node."""

    source: NodeOperand
    relation: str
    end: NodeOperand

    opcode: ClassVar[str] = "DELETE"
    category: ClassVar[str] = Category.MAINTENANCE


@dataclass(frozen=True)
class SetColor(Instruction):
    """SET-COLOR node, color."""

    node: NodeOperand
    color: int

    opcode: ClassVar[str] = "SET-COLOR"
    category: ClassVar[str] = Category.MAINTENANCE


# ----------------------------------------------------------------------
# Search (configuration phase: set initial markers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchNode(Instruction):
    """SEARCH-NODE node, marker, value — set marker at a named node."""

    node: NodeOperand
    marker: int
    value: float = 0.0

    opcode: ClassVar[str] = "SEARCH-NODE"
    category: ClassVar[str] = Category.SEARCH

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker,)


@dataclass(frozen=True)
class SearchRelation(Instruction):
    """SEARCH-RELATION relation, marker, value.

    Sets the marker at every node with an outgoing link of the given
    relation type.
    """

    relation: str
    marker: int
    value: float = 0.0

    opcode: ClassVar[str] = "SEARCH-RELATION"
    category: ClassVar[str] = Category.SEARCH

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker,)


@dataclass(frozen=True)
class SearchColor(Instruction):
    """SEARCH-COLOR color, marker, value — mark every node of a color."""

    color: int
    marker: int
    value: float = 0.0

    opcode: ClassVar[str] = "SEARCH-COLOR"
    category: ClassVar[str] = Category.SEARCH

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker,)


# ----------------------------------------------------------------------
# Propagation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Propagate(Instruction):
    """PROPAGATE marker-1, marker-2, rule-type(r1,r2), function.

    Sends ``marker2`` from every node where ``marker1`` is set, along
    the paths admitted by ``rule``; ``function`` (a hop-function name
    or token) updates marker2's value at every link traversed.
    """

    marker1: int
    marker2: int
    rule: PropagationRule
    function: Union[int, str] = "identity"

    opcode: ClassVar[str] = "PROPAGATE"
    category: ClassVar[str] = Category.PROPAGATE

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker1,)

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker2,)


# ----------------------------------------------------------------------
# Marker node maintenance (binding)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MarkerCreate(Instruction):
    """MARKER-CREATE marker, forward-relation, end-node, reverse-relation.

    Binds concepts that have been marked: every node with ``marker``
    set is linked to ``end`` by a forward relation, and ``end`` is
    linked back by a reverse relation.
    """

    marker: int
    forward: str
    end: NodeOperand
    reverse: Optional[str] = None

    opcode: ClassVar[str] = "MARKER-CREATE"
    category: ClassVar[str] = Category.MARKER_MAINT

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker,)


@dataclass(frozen=True)
class MarkerDelete(Instruction):
    """MARKER-DELETE marker, forward-relation, end-node, reverse-relation."""

    marker: int
    forward: str
    end: NodeOperand
    reverse: Optional[str] = None

    opcode: ClassVar[str] = "MARKER-DELETE"
    category: ClassVar[str] = Category.MARKER_MAINT

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker,)


@dataclass(frozen=True)
class MarkerSetColor(Instruction):
    """MARKER-SET-COLOR marker, color — recolor all marked nodes."""

    marker: int
    color: int

    opcode: ClassVar[str] = "MARKER-SET-COLOR"
    category: ClassVar[str] = Category.MARKER_MAINT

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker,)


# ----------------------------------------------------------------------
# Boolean (global, over the whole marker status table)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AndMarker(Instruction):
    """AND-MARKER marker-1, marker-2, marker-3, function.

    Sets marker-3 at nodes where both sources are set; ``function``
    (combine-function name/token) merges the two source values.
    """

    marker1: int
    marker2: int
    marker3: int
    function: Union[int, str] = "first"

    opcode: ClassVar[str] = "AND-MARKER"
    category: ClassVar[str] = Category.BOOLEAN

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker1, self.marker2)

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker3,)


@dataclass(frozen=True)
class OrMarker(Instruction):
    """OR-MARKER marker-1, marker-2, marker-3, function."""

    marker1: int
    marker2: int
    marker3: int
    function: Union[int, str] = "first"

    opcode: ClassVar[str] = "OR-MARKER"
    category: ClassVar[str] = Category.BOOLEAN

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker1, self.marker2)

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker3,)


@dataclass(frozen=True)
class NotMarker(Instruction):
    """NOT-MARKER marker-1, marker-2, value, condition.

    Sets marker-2 at nodes where marker-1 is *not* "satisfied": either
    clear, or set with a value failing ``condition(value1, value)``.
    With the default ``always`` condition this is plain complement.
    """

    marker1: int
    marker2: int
    value: float = 0.0
    condition: str = "always"

    opcode: ClassVar[str] = "NOT-MARKER"
    category: ClassVar[str] = Category.BOOLEAN

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker1,)

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker2,)


# ----------------------------------------------------------------------
# Set/clear (direct update, no test of present state)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SetMarker(Instruction):
    """SET-MARKER marker, value — set at every node."""

    marker: int
    value: float = 0.0

    opcode: ClassVar[str] = "SET-MARKER"
    category: ClassVar[str] = Category.SETCLEAR

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker,)


@dataclass(frozen=True)
class ClearMarker(Instruction):
    """CLEAR-MARKER marker — clear at every node."""

    marker: int

    opcode: ClassVar[str] = "CLEAR-MARKER"
    category: ClassVar[str] = Category.SETCLEAR

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker,)


@dataclass(frozen=True)
class FuncMarker(Instruction):
    """FUNC-MARKER marker, function — rewrite values where set."""

    marker: int
    function: Union[int, str] = "identity"

    opcode: ClassVar[str] = "FUNC-MARKER"
    category: ClassVar[str] = Category.SETCLEAR

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker,)

    def writes(self) -> Tuple[int, ...]:
        """Marker ids this instruction writes."""
        return (self.marker,)


# ----------------------------------------------------------------------
# Retrieval
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CollectNode(Instruction):
    """COLLECT-NODE marker — return ids/names of marked nodes.

    This is the opcode that forces PU serialization and a barrier
    (paper §III-A).
    """

    marker: int

    opcode: ClassVar[str] = "COLLECT-NODE"
    category: ClassVar[str] = Category.COLLECT

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker,)


@dataclass(frozen=True)
class CollectMarker(Instruction):
    """COLLECT-MARKER marker — return (node, value, origin) triples."""

    marker: int

    opcode: ClassVar[str] = "COLLECT-MARKER"
    category: ClassVar[str] = Category.COLLECT

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker,)


@dataclass(frozen=True)
class CollectRelation(Instruction):
    """COLLECT-RELATION marker, relation.

    Returns the links of the given relation type leaving marked nodes.
    """

    marker: int
    relation: str

    opcode: ClassVar[str] = "COLLECT-RELATION"
    category: ClassVar[str] = Category.COLLECT

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker,)


@dataclass(frozen=True)
class CollectColor(Instruction):
    """COLLECT-COLOR marker — return (node, color) pairs of marked nodes."""

    marker: int

    opcode: ClassVar[str] = "COLLECT-COLOR"
    category: ClassVar[str] = Category.COLLECT

    def reads(self) -> Tuple[int, ...]:
        """Marker ids this instruction reads."""
        return (self.marker,)


#: All twenty instruction classes of Table II.
INSTRUCTION_SET = (
    Create,
    Delete,
    SetColor,
    SearchNode,
    SearchRelation,
    SearchColor,
    Propagate,
    MarkerCreate,
    MarkerDelete,
    MarkerSetColor,
    AndMarker,
    OrMarker,
    NotMarker,
    SetMarker,
    ClearMarker,
    FuncMarker,
    CollectNode,
    CollectMarker,
    CollectRelation,
    CollectColor,
)

#: Opcode string -> class.
OPCODES = {cls.opcode: cls for cls in INSTRUCTION_SET}
