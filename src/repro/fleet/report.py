"""Fleet reports: per-query outcomes with explicit partial-result
semantics, shard summaries, and placement history.

The fleet-level analogue of :class:`repro.host.report.ServingReport`.
The key difference is the outcome record: a scatter-gather answer is
not a single served/failed bit but a **per-shard ledger** — which
shards answered fresh (from their home-region primary), which answered
stale (a surviving non-home replica after failover), and which were
shed (leg deadline missed or shard wholly unavailable).  The
:class:`FleetStatus` is derived from that ledger against the quorum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from ..host.report import _percentile_sorted
from .placement import PrimaryChange


class FleetStatus(str, Enum):
    """Terminal disposition of one fleet query."""

    #: Every shard answered from its home-region primary.
    COMPLETE = "complete"
    #: Quorum answered, but some legs were stale or shed.
    DEGRADED = "degraded"
    #: All legs resolved, yet fewer than quorum answered.
    FAILED = "failed"
    #: Admission control rejected the query outright.
    SHED = "shed"
    #: The query deadline fired below quorum.
    TIMED_OUT = "timed-out"


#: Statuses that deliver an answer to the caller.
ANSWERED_STATUSES = (FleetStatus.COMPLETE, FleetStatus.DEGRADED)


@dataclass(slots=True)
class FleetOutcome:
    """One query's scatter-gather ledger."""

    query_id: int
    status: FleetStatus
    arrival_us: float
    finish_us: float
    #: Arrival-to-terminal elapsed time, in µs.
    latency_us: float
    #: Shards that answered from their home-region primary.
    shards_fresh: Tuple[int, ...] = ()
    #: Shards that answered from a non-home (failover) replica.
    shards_stale: Tuple[int, ...] = ()
    #: Shards whose leg was shed (deadline, unavailable, or cut off
    #: when the query-level deadline fired).
    shards_shed: Tuple[int, ...] = ()
    #: Failover hops paid by this query (= stale legs served).
    failovers: int = 0
    #: Whether every answered leg matched the shard's reference
    #: answer (vacuously True for queries that answered no shard).
    correct: bool = True
    #: Why admission rejected the query (shed outcomes only).
    shed_reason: Optional[str] = None
    #: Answered-leg payloads by shard id (program-order result lists).
    results: Optional[Dict[int, List[Any]]] = field(
        default=None, repr=False
    )

    @property
    def answered(self) -> int:
        """Shards that produced an answer (fresh + stale)."""
        return len(self.shards_fresh) + len(self.shards_stale)

    @property
    def ok(self) -> bool:
        """Answered with quorum AND every answered leg was correct.

        The availability-SLO "good event" predicate: a degraded-but-
        correct answer counts, a complete-but-corrupted one does not.
        """
        return self.status in ANSWERED_STATUSES and self.correct

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-friendly; payloads omitted)."""
        return {
            "query_id": self.query_id,
            "status": self.status.value,
            "arrival_us": self.arrival_us,
            "finish_us": self.finish_us,
            "latency_us": self.latency_us,
            "shards_fresh": list(self.shards_fresh),
            "shards_stale": list(self.shards_stale),
            "shards_shed": list(self.shards_shed),
            "failovers": self.failovers,
            "correct": self.correct,
            "ok": self.ok,
            "shed_reason": self.shed_reason,
        }


@dataclass
class ShardSummary:
    """Per-shard serving statistics for the report."""

    shard_id: int
    num_nodes: int
    home_region: int
    #: Region serving the shard when the run ended (None = dark).
    serving_region: Optional[int]
    #: Live replica count when the run ended.
    replication: int
    legs_fresh: int = 0
    legs_stale: int = 0
    legs_shed: int = 0
    #: Legs answered with an empty result (query root not on shard).
    legs_missed: int = 0
    primary_changes: int = 0
    rebuilds: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "num_nodes": self.num_nodes,
            "home_region": self.home_region,
            "serving_region": self.serving_region,
            "replication": self.replication,
            "legs_fresh": self.legs_fresh,
            "legs_stale": self.legs_stale,
            "legs_shed": self.legs_shed,
            "legs_missed": self.legs_missed,
            "primary_changes": self.primary_changes,
            "rebuilds": self.rebuilds,
        }


@dataclass
class FleetReport:
    """Full measurement record of one fleet serving run."""

    outcomes: List[FleetOutcome] = field(default_factory=list)
    shards: List[ShardSummary] = field(default_factory=list)
    #: Simulated time at which the last query reached a terminal state.
    total_time_us: float = 0.0
    #: Every serving-primary move, in time order.
    primary_changes: List[PrimaryChange] = field(default_factory=list)
    #: Re-replication copies completed / aborted (dead target region).
    rebuilds_completed: int = 0
    rebuilds_aborted: int = 0
    #: Per-shard live replica counts at end of run.
    final_replication: List[int] = field(default_factory=list)
    #: Configured replication factor, for the R invariant check.
    replication_factor: int = 0
    _latency_cache: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def count(self, status: FleetStatus) -> int:
        """Queries that terminated in one bucket."""
        return sum(1 for o in self.outcomes if o.status is status)

    @property
    def submitted(self) -> int:
        return len(self.outcomes)

    @property
    def complete(self) -> int:
        return self.count(FleetStatus.COMPLETE)

    @property
    def degraded(self) -> int:
        return self.count(FleetStatus.DEGRADED)

    @property
    def failed(self) -> int:
        return self.count(FleetStatus.FAILED)

    @property
    def shed(self) -> int:
        return self.count(FleetStatus.SHED)

    @property
    def timed_out(self) -> int:
        return self.count(FleetStatus.TIMED_OUT)

    @property
    def answered(self) -> int:
        """Queries that returned an answer (complete + degraded)."""
        return self.complete + self.degraded

    @property
    def answered_fraction(self) -> float:
        """Answered share of all submitted queries."""
        return self.answered / self.submitted if self.submitted else 0.0

    @property
    def correct_answered(self) -> int:
        """Answered queries whose every leg matched the reference."""
        return sum(
            1 for o in self.outcomes
            if o.status in ANSWERED_STATUSES and o.correct
        )

    def accounted(self) -> bool:
        """Every submitted query in exactly one outcome bucket, and
        every outcome's shard ledger disjoint."""
        ids = [o.query_id for o in self.outcomes]
        if len(ids) != len(set(ids)):
            return False
        buckets = (self.complete + self.degraded + self.failed
                   + self.shed + self.timed_out)
        if buckets != self.submitted:
            return False
        for o in self.outcomes:
            ledger = o.shards_fresh + o.shards_stale + o.shards_shed
            if len(ledger) != len(set(ledger)):
                return False
        return True

    def replication_restored(self) -> bool:
        """Whether every shard ended the run at full replication."""
        return all(
            count >= self.replication_factor
            for count in self.final_replication
        )

    # ------------------------------------------------------------------
    def answered_latencies(self) -> List[float]:
        """Latencies of answered (complete or degraded) queries, µs."""
        return [
            o.latency_us for o in self.outcomes
            if o.status in ANSWERED_STATUSES
        ]

    def _sorted_answered_latencies(self) -> List[float]:
        cached = self._latency_cache
        if cached is not None and cached[0] == len(self.outcomes):
            return cached[1]
        ordered = sorted(self.answered_latencies())
        self._latency_cache = (len(self.outcomes), ordered)
        return ordered

    def latency_percentile(self, p: float) -> float:
        """Answered-latency percentile, in µs."""
        return _percentile_sorted(self._sorted_answered_latencies(), p)

    def latency_summary(self) -> Dict[str, float]:
        """Mean/p50/p95/p99 answered latency (µs), one sorted pass."""
        ordered = self._sorted_answered_latencies()
        return {
            "mean": sum(ordered) / len(ordered) if ordered else 0.0,
            "p50": _percentile_sorted(ordered, 50),
            "p95": _percentile_sorted(ordered, 95),
            "p99": _percentile_sorted(ordered, 99),
        }

    def throughput_per_s(self) -> float:
        """Answered queries per simulated second."""
        if self.total_time_us <= 0:
            return 0.0
        return self.answered / (self.total_time_us / 1e6)

    @property
    def total_failovers(self) -> int:
        """Failover hops paid across all answered queries."""
        return sum(o.failovers for o in self.outcomes)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-friendly)."""
        return {
            "submitted": self.submitted,
            "complete": self.complete,
            "degraded": self.degraded,
            "failed": self.failed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "answered_fraction": self.answered_fraction,
            "correct_answered": self.correct_answered,
            "total_time_us": self.total_time_us,
            "latency_us": self.latency_summary(),
            "total_failovers": self.total_failovers,
            "primary_changes": len(self.primary_changes),
            "rebuilds_completed": self.rebuilds_completed,
            "rebuilds_aborted": self.rebuilds_aborted,
            "final_replication": list(self.final_replication),
            "replication_factor": self.replication_factor,
            "shards": [s.as_dict() for s in self.shards],
            "outcomes": [o.as_dict() for o in self.outcomes],
        }

    def summary(self) -> Dict[str, Any]:
        """Headline numbers for experiment tables."""
        latency = self.latency_summary()
        return {
            "submitted": self.submitted,
            "complete": self.complete,
            "degraded": self.degraded,
            "failed": self.failed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "answered_fraction": round(self.answered_fraction, 4),
            "p50_ms": round(latency["p50"] / 1e3, 3),
            "p99_ms": round(latency["p99"] / 1e3, 3),
            "failovers": self.total_failovers,
            "rebuilds": self.rebuilds_completed,
            "replication_restored": self.replication_restored(),
        }
