"""Fleet configuration: shards × replicas × regions plus routing knobs.

The fleet serves **one** knowledge base sharded across ``num_shards``
shard groups (community partitioning aligns shards with query
locality); each shard is replicated ``replication_factor`` times, with
every replica placed in a **distinct region** (failure domain) chosen
by consistent hashing.  A full-region outage therefore costs every
shard at most one replica, never its last.

Routing semantics configured here:

* **per-shard deadlines** — each scatter-gather leg gets
  ``shard_deadline_us`` (capped by the query's own deadline); a leg
  that misses it is recorded as *shed* rather than stalling the
  gather;
* **quorum-or-degrade** — a query whose answered-shard count reaches
  ``ceil(quorum_fraction * num_shards)`` returns a (possibly
  stale-flagged) degraded answer instead of failing;
* **failover** — serving moves to the next surviving replica in ring
  preference order when a region dies, a replica's health lifecycle
  quarantines it, or its breaker-style signal fires; cross-region
  serving pays ``failover_penalty_us`` per answer;
* **rebalance** — a background re-replication loop restores the
  replication factor after failures under a budgeted copy bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..machine.faults import RegionSchedule
from ..network.partition import PARTITIONERS


class FleetConfigError(ValueError):
    """Raised for inconsistent fleet configurations."""


@dataclass(frozen=True)
class FleetConfig:
    """Everything the fleet layer needs beyond the KB itself."""

    #: Failure domains replicas are spread across.
    num_regions: int = 3
    #: Shard groups the KB is partitioned into.
    num_shards: int = 4
    #: Replicas per shard, each in a distinct region.
    replication_factor: int = 2
    #: KB partition policy (see :data:`repro.network.partition.PARTITIONERS`).
    partition_policy: str = "community"
    # -- per-shard nested machine -----------------------------------------
    #: Clusters in each shard's array slice.
    clusters_per_shard: int = 4
    #: Marker units per cluster within each shard machine.
    mus_per_cluster: int = 2
    # -- router -----------------------------------------------------------
    #: Concurrent scatter-gathers admitted; ``None`` = unbounded.
    queue_capacity: Optional[int] = 64
    #: Deadline applied to queries that carry none (``None`` = none).
    default_deadline_us: Optional[float] = None
    #: Per-leg deadline of one shard attempt (``None`` = the query's
    #: own deadline governs every leg).
    shard_deadline_us: Optional[float] = None
    #: Fraction of shards that must answer for a degraded response.
    quorum_fraction: float = 0.5
    #: Extra latency per answer served by a non-home-region replica
    #: (the inter-region hop of a failover).
    failover_penalty_us: float = 200.0
    #: Service time of a shard leg whose subgraph has no hit for the
    #: query's search root (one name-table broadcast check).
    name_miss_service_us: float = 5.0
    # -- placement --------------------------------------------------------
    #: Consistent-hash ring seed (placement is a pure function of it).
    placement_seed: int = 0
    #: Virtual nodes per region on the ring.
    vnodes_per_region: int = 16
    # -- region fault timeline -------------------------------------------
    #: Scheduled regional outages / repairs / gray slowdowns.
    region_schedule: RegionSchedule = field(default_factory=RegionSchedule)
    # -- rebalance --------------------------------------------------------
    #: Re-replication copy bandwidth, KB nodes per simulated µs.
    rebalance_bandwidth_nodes_per_us: float = 0.01
    #: Fixed per-copy setup cost (snapshot + stream start), µs.
    rebalance_setup_us: float = 500.0
    #: Concurrent copies the bandwidth budget admits.
    rebalance_concurrency: int = 1
    # -- replica health lifecycle (phi-accrual, as in repro.host) ---------
    health_enabled: bool = False
    health_window: int = 12
    health_min_samples: int = 4
    health_sigma_floor: float = 0.08
    health_phi_quarantine: float = 8.0
    health_probe_after_us: float = 30_000.0
    health_probe_successes: int = 2
    health_readmit_ratio: float = 1.5

    def __post_init__(self) -> None:
        for name in ("num_regions", "num_shards", "replication_factor",
                     "clusters_per_shard", "mus_per_cluster",
                     "vnodes_per_region", "rebalance_concurrency"):
            value = getattr(self, name)
            if value < 1:
                raise FleetConfigError(f"{name} must be >= 1: {value}")
        if self.replication_factor > self.num_regions:
            raise FleetConfigError(
                f"replication_factor {self.replication_factor} exceeds "
                f"num_regions {self.num_regions}: replicas must land in "
                "distinct failure domains"
            )
        if self.partition_policy not in PARTITIONERS:
            raise FleetConfigError(
                f"unknown partition policy {self.partition_policy!r}; "
                f"choose from {sorted(PARTITIONERS)}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise FleetConfigError(
                f"queue_capacity must be >= 1: {self.queue_capacity}"
            )
        if (self.default_deadline_us is not None
                and self.default_deadline_us <= 0):
            raise FleetConfigError(
                f"default_deadline_us must be > 0: "
                f"{self.default_deadline_us}"
            )
        if self.shard_deadline_us is not None and self.shard_deadline_us <= 0:
            raise FleetConfigError(
                f"shard_deadline_us must be > 0: {self.shard_deadline_us}"
            )
        if not 0.0 < self.quorum_fraction <= 1.0:
            raise FleetConfigError(
                f"quorum_fraction must be in (0, 1]: {self.quorum_fraction}"
            )
        for name in ("failover_penalty_us", "name_miss_service_us",
                     "rebalance_setup_us"):
            value = getattr(self, name)
            if value < 0:
                raise FleetConfigError(f"{name} must be >= 0: {value}")
        if self.rebalance_bandwidth_nodes_per_us <= 0:
            raise FleetConfigError(
                "rebalance_bandwidth_nodes_per_us must be > 0: "
                f"{self.rebalance_bandwidth_nodes_per_us}"
            )
        bad = [r for r in self.region_schedule.regions()
               if r >= self.num_regions]
        if bad:
            raise FleetConfigError(
                "region_schedule names regions outside the "
                f"{self.num_regions}-region fleet: {bad}"
            )

    @property
    def quorum(self) -> int:
        """Shards that must answer for a degraded response (>= 1)."""
        return max(1, math.ceil(self.num_shards * self.quorum_fraction))
