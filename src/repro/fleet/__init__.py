"""repro.fleet: a sharded, replicated serving fleet.

The scale-out layer above :mod:`repro.host` (ROADMAP item 2): one
knowledge base community-sharded across shard groups, each shard
replicated across distinct regional failure domains by consistent-hash
placement, fronted by a router doing scatter-gather with explicit
partial-result semantics (per-shard deadlines, quorum-or-degrade,
stale-replica flagging) and event-driven failover.  A background
rebalancer restores the replication factor after regional failures
under a budgeted copy bandwidth.

See ``docs/FLEET.md`` for the design walk-through and the
``fleetchaos`` experiment for the regional-outage rescue.
"""

from .config import FleetConfig, FleetConfigError
from .placement import (
    HashRing,
    PlacementMap,
    PrimaryChange,
    ReplicaState,
    ShardReplica,
)
from .rebalance import CopyJob, Rebalancer
from .report import (
    ANSWERED_STATUSES,
    FleetOutcome,
    FleetReport,
    FleetStatus,
    ShardSummary,
)
from .router import FleetRouter
from .sharding import (
    FleetError,
    Shard,
    ShardAnswer,
    ShardExecutor,
    build_shards,
)

__all__ = [
    "ANSWERED_STATUSES",
    "CopyJob",
    "FleetConfig",
    "FleetConfigError",
    "FleetError",
    "FleetOutcome",
    "FleetReport",
    "FleetRouter",
    "FleetStatus",
    "HashRing",
    "PlacementMap",
    "PrimaryChange",
    "Rebalancer",
    "ReplicaState",
    "Shard",
    "ShardAnswer",
    "ShardExecutor",
    "ShardReplica",
    "ShardSummary",
    "build_shards",
]
