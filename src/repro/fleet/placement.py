"""Consistent-hash placement with failure-domain-aware replication.

Placement answers two questions deterministically, as a pure function
of ``(placement_seed, num_regions, shard_id)``:

* **Where do a shard's R replicas live?**  A SHA-256 consistent-hash
  ring carries ``vnodes_per_region`` virtual nodes per region; walking
  the ring clockwise from the shard's key and keeping the first
  occurrence of each region yields the shard's **preference list** — a
  permutation of all regions.  The first R entries hold replicas; the
  first entry is the shard's **home region** (its primary).
* **Who serves the shard right now?**  The first *available* replica
  in preference order (alive region, replica fully built, not
  quarantined by the health lifecycle).  Serving from any non-home
  replica is a **failover**: the answer is flagged *stale* (it did not
  come from the shard's primary) and pays the cross-region hop
  penalty.

:class:`PlacementMap` tracks live replica state through regional
fail/repair events and records every primary change with its
timestamp — the failover-flapping anomaly check in
:mod:`repro.obs.analyze.drift` windows over exactly this series.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..host.health import ReplicaHealth
from .config import FleetConfig


def _digest(key: str) -> int:
    """Stable 64-bit hash (process-seed independent, unlike hash())."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """SHA-256 consistent-hash ring over regions."""

    def __init__(self, num_regions: int, vnodes_per_region: int,
                 seed: int) -> None:
        self.num_regions = num_regions
        self._seed = seed
        points: List[Tuple[int, int]] = []
        for region in range(num_regions):
            for vnode in range(vnodes_per_region):
                points.append(
                    (_digest(f"{seed}:region:{region}:vnode:{vnode}"),
                     region)
                )
        points.sort()
        self._points = points

    def preference(self, shard_id: int) -> Tuple[int, ...]:
        """All regions in ring order from the shard's key (distinct).

        The full permutation, not just the first R: failover and
        rebuild targets continue down the same list, so placement
        decisions never need a second hash function.
        """
        key = _digest(f"{self._seed}:shard:{shard_id}")
        points = self._points
        # Binary search for the first point at or after the key.
        lo, hi = 0, len(points)
        while lo < hi:
            mid = (lo + hi) // 2
            if points[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        order: List[int] = []
        seen = set()
        for i in range(len(points)):
            region = points[(lo + i) % len(points)][1]
            if region not in seen:
                seen.add(region)
                order.append(region)
                if len(order) == self.num_regions:
                    break
        return tuple(order)


class ReplicaState(str, Enum):
    """Lifecycle of one shard replica."""

    ACTIVE = "active"
    #: Region died with the replica on it; data is gone.
    DEAD = "dead"
    #: Re-replication copy in flight; serves nothing until built.
    REBUILDING = "rebuilding"


@dataclass
class ShardReplica:
    """One copy of one shard in one region."""

    shard_id: int
    region: int
    state: ReplicaState = ReplicaState.ACTIVE
    #: Health lifecycle (phi-accrual quarantine); ``None`` = unmanaged.
    health: Optional[ReplicaHealth] = None
    #: Queries this replica answered.
    served: int = 0

    def available(self, now: float, region_up: Sequence[bool]) -> bool:
        """Whether the router may serve from this replica at ``now``."""
        if self.state is not ReplicaState.ACTIVE:
            return False
        if not region_up[self.region]:
            return False
        if self.health is not None and not self.health.allow(now):
            return False
        return True


@dataclass(frozen=True)
class PrimaryChange:
    """One serving-primary move of one shard (the failover record)."""

    time_us: float
    shard_id: int
    from_region: Optional[int]
    to_region: Optional[int]
    reason: str


class PlacementMap:
    """Live placement state of every shard across the regions."""

    def __init__(self, config: FleetConfig,
                 num_shards: Optional[int] = None) -> None:
        self.config = config
        self.num_shards = (config.num_shards if num_shards is None
                           else num_shards)
        self.ring = HashRing(
            config.num_regions, config.vnodes_per_region,
            config.placement_seed,
        )
        #: Region liveness; flipped by regional fail/repair events.
        self.region_up: List[bool] = [True] * config.num_regions
        #: Regional gray-slowdown factors (1.0 = nominal).
        self.region_slowdown: List[float] = [1.0] * config.num_regions
        self.preferences: List[Tuple[int, ...]] = [
            self.ring.preference(sid) for sid in range(self.num_shards)
        ]
        self.replicas: List[Dict[int, ShardReplica]] = []
        for sid in range(self.num_shards):
            placed: Dict[int, ShardReplica] = {}
            for region in self.preferences[sid][:config.replication_factor]:
                health = None
                if config.health_enabled:
                    health = ReplicaHealth(
                        enabled=True,
                        window=config.health_window,
                        min_samples=config.health_min_samples,
                        sigma_floor=config.health_sigma_floor,
                        phi_quarantine=config.health_phi_quarantine,
                        probe_after_us=config.health_probe_after_us,
                        probe_successes=config.health_probe_successes,
                        readmit_ratio=config.health_readmit_ratio,
                    )
                placed[region] = ShardReplica(sid, region, health=health)
            self.replicas.append(placed)
        #: Serving primary per shard (region), ``None`` = unavailable.
        self._serving: List[Optional[int]] = [
            self.preferences[sid][0] for sid in range(self.num_shards)
        ]
        self.primary_changes: List[PrimaryChange] = []

    # ------------------------------------------------------------------
    def home_region(self, shard_id: int) -> int:
        """The shard's first-preference (primary) region."""
        return self.preferences[shard_id][0]

    def serving_region(self, shard_id: int) -> Optional[int]:
        """Region currently recorded as the shard's serving primary."""
        return self._serving[shard_id]

    def select(self, shard_id: int, now: float) -> Optional[ShardReplica]:
        """First available replica in preference order (or ``None``)."""
        placed = self.replicas[shard_id]
        for region in self.preferences[shard_id]:
            replica = placed.get(region)
            if replica is not None and replica.available(now, self.region_up):
                return replica
        return None

    def note_serving(self, shard_id: int, region: Optional[int],
                     now: float, reason: str) -> bool:
        """Record who served the shard; returns True on a primary change.

        Every change — away from home on failure *and* back home on
        repair — appends a :class:`PrimaryChange`, which is what the
        drift layer's failover-flap window counts.
        """
        previous = self._serving[shard_id]
        if previous == region:
            return False
        self._serving[shard_id] = region
        self.primary_changes.append(
            PrimaryChange(now, shard_id, previous, region, reason)
        )
        return True

    # ------------------------------------------------------------------
    def region_fail(self, region: int) -> List[int]:
        """A whole failure domain goes dark; its replica data is lost.

        Returns the shards that lost a replica.
        """
        self.region_up[region] = False
        affected: List[int] = []
        for sid, placed in enumerate(self.replicas):
            replica = placed.get(region)
            if replica is not None:
                replica.state = ReplicaState.DEAD
                affected.append(sid)
        return affected

    def region_repair(self, region: int) -> List[int]:
        """The domain returns empty: dead replicas there are garbage.

        Returns shards whose **home** is the repaired region — the
        rebalancer restores those copies so serving can revert home.
        """
        self.region_up[region] = True
        came_home: List[int] = []
        for sid, placed in enumerate(self.replicas):
            replica = placed.get(region)
            if replica is not None and replica.state is ReplicaState.DEAD:
                del placed[region]
            if (self.home_region(sid) == region
                    and region not in placed):
                came_home.append(sid)
        return came_home

    def set_slowdown(self, region: int, factor: float) -> None:
        """Apply (or clear, with 1.0) a gray slowdown to a region."""
        self.region_slowdown[region] = factor

    # ------------------------------------------------------------------
    def active_count(self, shard_id: int) -> int:
        """Replicas of the shard currently ACTIVE in a live region."""
        return sum(
            1 for r in self.replicas[shard_id].values()
            if r.state is ReplicaState.ACTIVE and self.region_up[r.region]
        )

    def replication_counts(self) -> List[int]:
        """Per-shard live replica counts (the fleet's R invariant)."""
        return [self.active_count(sid) for sid in range(self.num_shards)]

    def rebuild_target(self, shard_id: int) -> Optional[int]:
        """Best region for a new copy of the shard, or ``None``.

        First preference-order region that is up and holds no replica
        (dead or otherwise) of the shard.
        """
        placed = self.replicas[shard_id]
        for region in self.preferences[shard_id]:
            if self.region_up[region] and region not in placed:
                return region
        return None

    def begin_rebuild(self, shard_id: int, region: int) -> ShardReplica:
        """Install a REBUILDING placeholder for an in-flight copy."""
        health = None
        if self.config.health_enabled:
            health = ReplicaHealth(
                enabled=True,
                window=self.config.health_window,
                min_samples=self.config.health_min_samples,
                sigma_floor=self.config.health_sigma_floor,
                phi_quarantine=self.config.health_phi_quarantine,
                probe_after_us=self.config.health_probe_after_us,
                probe_successes=self.config.health_probe_successes,
                readmit_ratio=self.config.health_readmit_ratio,
            )
        replica = ShardReplica(
            shard_id, region, state=ReplicaState.REBUILDING, health=health
        )
        self.replicas[shard_id][region] = replica
        return replica

    def finish_rebuild(self, replica: ShardReplica) -> bool:
        """Complete a copy; returns False if the target died meanwhile."""
        if not self.region_up[replica.region]:
            # Copy landed in a dead region: drop it.
            placed = self.replicas[replica.shard_id]
            if placed.get(replica.region) is replica:
                del placed[replica.region]
            return False
        replica.state = ReplicaState.ACTIVE
        return True

    def trim_to_replication_factor(self, shard_id: int) -> List[int]:
        """Drop surplus ACTIVE replicas beyond R, least-preferred first.

        Used after a home-region restore: the emergency copy made
        during the outage is released once the preferred set is whole
        again.  Never drops below R and never drops the home replica.
        Returns the regions trimmed.
        """
        placed = self.replicas[shard_id]
        active = [
            r for r in placed.values()
            if r.state is ReplicaState.ACTIVE and self.region_up[r.region]
        ]
        surplus = len(active) - self.config.replication_factor
        if surplus <= 0:
            return []
        order = {region: i for i, region in
                 enumerate(self.preferences[shard_id])}
        active.sort(key=lambda r: order[r.region], reverse=True)
        trimmed: List[int] = []
        for replica in active[:surplus]:
            if replica.region == self.home_region(shard_id):
                continue
            del placed[replica.region]
            trimmed.append(replica.region)
        return trimmed
