"""Background re-replication: restoring R after a failure domain dies.

The rebalancer is the fleet's repair loop, running on the router's
discrete-event simulator.  It reacts to two placement signals:

* **Under-replication** — a regional failure left some shard with
  fewer than R live replicas.  The rebalancer copies the shard from a
  surviving replica to the best surviving region (first
  preference-order region that is up and empty of the shard).
* **Home restore** — a repaired region returns *empty*; shards whose
  home is that region get a copy back so serving can revert to the
  primary, after which any surplus emergency replica (made during the
  outage) is trimmed, returning the shard to exactly R copies.

Copies are **budgeted**: each costs ``rebalance_setup_us`` plus
``num_nodes / rebalance_bandwidth_nodes_per_us`` of simulated time,
and at most ``rebalance_concurrency`` copies stream at once — the rest
wait in FIFO order.  A copy whose target region dies mid-stream is
aborted and the deficit re-examined, so the loop converges as long as
any region stays up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Set

from ..machine.des import Simulator
from .config import FleetConfig
from .placement import PlacementMap, ShardReplica
from .sharding import Shard


@dataclass(slots=True)
class CopyJob:
    """One in-flight (or queued) shard copy."""

    shard_id: int
    target_region: int
    replica: ShardReplica
    #: ``restore-R`` (replication deficit) or ``restore-home``.
    kind: str
    enqueued_us: float


class Rebalancer:
    """FIFO, bandwidth-budgeted re-replication loop."""

    def __init__(
        self,
        sim: Simulator,
        placement: PlacementMap,
        shards: List[Shard],
        config: FleetConfig,
        on_complete: Optional[Callable[[CopyJob], None]] = None,
        on_abort: Optional[Callable[[CopyJob], None]] = None,
    ) -> None:
        self.sim = sim
        self.placement = placement
        self.shards = shards
        self.config = config
        self.on_complete = on_complete
        self.on_abort = on_abort
        self._queue: Deque[CopyJob] = deque()
        self._in_flight = 0
        #: Shards with a queued or streaming copy (one at a time each).
        self._busy_shards: Set[int] = set()
        self.completed = 0
        self.aborted = 0
        self._finish_cb = self._finish

    # ------------------------------------------------------------------
    def copy_duration_us(self, shard_id: int) -> float:
        """Simulated cost of one full copy of the shard."""
        nodes = self.shards[shard_id].num_nodes
        return (self.config.rebalance_setup_us
                + nodes / self.config.rebalance_bandwidth_nodes_per_us)

    @property
    def idle(self) -> bool:
        """Whether no copy is queued or streaming."""
        return self._in_flight == 0 and not self._queue

    # ------------------------------------------------------------------
    def ensure_replication(self) -> int:
        """Queue copies for every shard below R; returns copies queued.

        A shard with **zero** live replicas has no copy source and is
        skipped — it re-enters the deficit scan when a region repair
        brings a replica back.
        """
        queued = 0
        for sid in range(self.placement.num_shards):
            if sid in self._busy_shards:
                continue
            active = self.placement.active_count(sid)
            if active >= self.config.replication_factor or active == 0:
                continue
            target = self.placement.rebuild_target(sid)
            if target is None:
                continue
            self._enqueue(sid, target, "restore-R")
            queued += 1
        return queued

    def restore_home(self, shard_ids: List[int]) -> int:
        """Queue copies back to the listed shards' home regions."""
        queued = 0
        for sid in shard_ids:
            if sid in self._busy_shards:
                continue
            home = self.placement.home_region(sid)
            if (not self.placement.region_up[home]
                    or home in self.placement.replicas[sid]
                    or self.placement.active_count(sid) == 0):
                continue
            self._enqueue(sid, home, "restore-home")
            queued += 1
        return queued

    # ------------------------------------------------------------------
    def _enqueue(self, shard_id: int, region: int, kind: str) -> None:
        replica = self.placement.begin_rebuild(shard_id, region)
        self._busy_shards.add(shard_id)
        self._queue.append(
            CopyJob(shard_id, region, replica, kind, self.sim.now)
        )
        self._drain()

    def _drain(self) -> None:
        while self._queue and self._in_flight < self.config.rebalance_concurrency:
            job = self._queue.popleft()
            self._in_flight += 1
            self.sim.schedule(
                self.copy_duration_us(job.shard_id), self._finish_cb, job
            )

    def _finish(self, job: CopyJob) -> None:
        self._in_flight -= 1
        self._busy_shards.discard(job.shard_id)
        if self.placement.finish_rebuild(job.replica):
            self.completed += 1
            if job.kind == "restore-home":
                self.placement.trim_to_replication_factor(job.shard_id)
            if self.on_complete is not None:
                self.on_complete(job)
        else:
            self.aborted += 1
            if self.on_abort is not None:
                self.on_abort(job)
        # The world may have changed while this copy streamed; keep
        # chasing the deficit until every shard is whole again.
        self.ensure_replication()
        self._drain()
