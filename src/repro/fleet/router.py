"""The fleet router: scatter-gather over shards with failover.

One :class:`FleetRouter` fronts the whole fleet.  A query fans out one
**leg** per shard; each leg is dispatched to the shard's first
available replica in ring-preference order and served through that
replica's FIFO queue at the shard machine's simulated cost (scaled by
any regional gray slowdown, plus the cross-region hop penalty when the
serving replica is not the shard's home primary).  Legs resolve
independently:

* a leg answered by the home-region primary is **fresh**;
* a leg answered by any other replica is **stale** (correct — the KB
  is immutable — but explicitly flagged, and it paid a failover hop);
* a leg that missed its per-shard deadline, found no live replica, or
  was cut off by the query deadline is **shed**.

The query finalizes when every leg resolves or its own deadline
fires; the :class:`~repro.fleet.report.FleetStatus` is derived from
the leg ledger against the quorum (``FleetConfig.quorum``).

Failure handling is event-driven.  A ``region-fail`` event marks every
replica in the domain dead, re-dispatches the in-flight legs it was
serving to surviving replicas, and wakes the rebalancer; a
``region-repair`` event triggers home-restore copies so serving
reverts to primaries; ``region-slowdown`` inflates the domain's
service times, which (with health enabled) drives the phi-accrual
lifecycle to quarantine gray replicas — a failover with no hard fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..host.health import HealthState, health_transition_records
from ..machine.config import Timing
from ..machine.des import Job, Server, Simulator
from ..network.graph import SemanticNetwork
from ..obs.tracer import get_tracer
from .config import FleetConfig
from .placement import PlacementMap, ShardReplica
from .rebalance import CopyJob, Rebalancer
from .report import FleetOutcome, FleetReport, FleetStatus, ShardSummary
from .sharding import FleetError, ShardAnswer, ShardExecutor, build_shards

#: Leg lifecycle labels (kept as strings for the ledger tuples).
_PENDING = "pending"
_FRESH = "fresh"
_STALE = "stale"
_SHED = "shed"


@dataclass(slots=True, eq=False)
class _Leg:
    """One shard's slice of one query's scatter-gather."""

    state: "_FleetQueryState"
    shard_id: int
    status: str = _PENDING
    #: Region of the current dispatch (None before first dispatch).
    region: Optional[int] = None
    #: Bumped on every re-dispatch; completions carry the attempt they
    #: belong to, so a superseded service finish is discarded.
    attempt: int = 0
    #: True when the shard had nothing for the query's search roots.
    miss: bool = False
    results: Optional[List[Any]] = None
    watchdog: Optional[list] = None
    span: Optional[list] = None
    #: Health handle of the in-flight probe dispatch, if any.
    probing: Optional[ShardReplica] = None


@dataclass(slots=True, eq=False)
class _FleetQueryState:
    """Router-side state of one in-flight scatter-gather."""

    query: Any
    legs: List[_Leg] = field(default_factory=list)
    resolved: int = 0
    deadline_abs: Optional[float] = None
    deadline_event: Optional[list] = None
    finished: bool = False
    track: int = 0
    span: Optional[list] = None


class FleetRouter:
    """Sharded, replicated serving fleet over one DES timeline."""

    def __init__(
        self,
        network: SemanticNetwork,
        config: Optional[FleetConfig] = None,
        timing: Optional[Timing] = None,
        tracer=None,
        metrics=None,
        sink=None,
    ) -> None:
        self.config = config or FleetConfig()
        self.shards = build_shards(network, self.config)
        self.executors = [
            ShardExecutor(shard, self.config, timing)
            for shard in self.shards
        ]
        self.placement = PlacementMap(self.config, len(self.shards))
        self.sim = Simulator()
        self.rebalancer = Rebalancer(
            self.sim, self.placement, self.shards, self.config,
            on_complete=self._rebuild_done, on_abort=self._rebuild_aborted,
        )
        self._servers: Dict[Tuple[int, int], Server] = {}
        self._states: List[_FleetQueryState] = []
        self._outcomes: List[FleetOutcome] = []
        self._legs_by_region: List[Set[_Leg]] = [
            set() for _ in range(self.config.num_regions)
        ]
        self._in_flight = 0
        self._last_terminal_us = 0.0
        self._ran = False
        # Per-shard tallies for the report.
        num_shards = len(self.shards)
        self._legs_fresh = [0] * num_shards
        self._legs_stale = [0] * num_shards
        self._legs_shed = [0] * num_shards
        self._legs_missed = [0] * num_shards
        self._rebuilds = [0] * num_shards
        # Pre-bound callbacks (no per-event closures on the hot path).
        self._arrive_cb = self._arrive
        self._leg_done_cb = self._leg_done
        self._leg_deadline_cb = self._leg_deadline
        self._query_deadline_cb = self._query_deadline
        self._region_event_cb = self._region_event
        # Observability.  Process names are distinct from the host
        # layer's ("host"/"queries") so trace analysis keyed on those
        # processes never mistakes fleet tracks for host tracks.
        obs_tracer = tracer if tracer is not None else get_tracer()
        self._tr = obs_tracer if obs_tracer.enabled else None
        self._metrics = metrics
        self._observed = self._tr is not None or metrics is not None
        # Live-telemetry sink (duck-typed, append-only; normally a
        # repro.obs.live.TelemetrySink).  Deliberately independent of
        # `_observed`: the sink reads nothing back, so attaching one
        # leaves the fleet report byte-identical.
        self._sink = sink
        if self._tr is not None:
            tr = self._tr
            self._tk_router = tr.track("fleet", "router")
            self._tk_shard = [
                tr.track("fleet", f"shard {sid:02d}")
                for sid in range(num_shards)
            ]

    # ------------------------------------------------------------------
    # Public entry
    # ------------------------------------------------------------------
    def serve(self, queries: Sequence[Any]) -> FleetReport:
        """Serve the whole stream to quiescence; return the report.

        Like the serving host, a router serves exactly one stream:
        replica state, health windows, and the region timeline are a
        single continuous history.
        """
        if self._ran:
            raise FleetError("a FleetRouter serves exactly one stream")
        self._ran = True
        seen: Set[int] = set()
        for query in queries:
            if query.query_id in seen:
                raise FleetError(f"duplicate query_id {query.query_id}")
            seen.add(query.query_id)
        sim = self.sim
        for event in self.config.region_schedule.events:
            sim.schedule(event.time_us, self._region_event_cb, event)
        default_deadline = self.config.default_deadline_us
        for query in sorted(
            queries, key=lambda q: (q.arrival_us, q.query_id)
        ):
            deadline = (
                query.deadline_us
                if query.deadline_us is not None
                else default_deadline
            )
            state = _FleetQueryState(
                query=query,
                deadline_abs=(
                    None if deadline is None
                    else query.arrival_us + deadline
                ),
            )
            self._states.append(state)
            sim.schedule(query.arrival_us, self._arrive_cb, state)
        sim.run()
        stuck = [s.query.query_id for s in self._states if not s.finished]
        if stuck:
            raise RuntimeError(f"fleet deadlock: queries {stuck}")
        if self._sink is not None:
            self._emit_lifecycle_telemetry()
        return self._build_report()

    # ------------------------------------------------------------------
    # Arrival, fan-out, and leg dispatch
    # ------------------------------------------------------------------
    def _arrive(self, state: _FleetQueryState) -> None:
        now = self.sim.now
        if self._tr is not None:
            qid = state.query.query_id
            state.track = self._tr.track(
                "fleet-queries", f"query {qid:05d}"
            )
            state.span = self._tr.begin(
                state.track, f"query {qid}", now,
                template=getattr(state.query, "template", "") or "",
            )
        if self._sink is not None:
            self._sink.emit(
                now, "arrival", query_id=state.query.query_id
            )
        cap = self.config.queue_capacity
        if cap is not None and self._in_flight >= cap:
            self._finalize(state, FleetStatus.SHED,
                           shed_reason="queue-full")
            return
        self._in_flight += 1
        if self._observed:
            self._note_in_flight()
        state.legs = [
            _Leg(state=state, shard_id=sid)
            for sid in range(len(self.shards))
        ]
        deadline = state.deadline_abs
        if deadline is not None:
            state.deadline_event = self.sim.schedule(
                max(deadline - now, 0.0), self._query_deadline_cb, state
            )
        leg_deadline = self.config.shard_deadline_us
        for leg in state.legs:
            if leg_deadline is not None:
                leg.watchdog = self.sim.schedule(
                    leg_deadline, self._leg_deadline_cb, leg
                )
            self._dispatch_leg(leg)

    def _dispatch_leg(self, leg: _Leg) -> None:
        """Route one leg to the best available replica of its shard."""
        now = self.sim.now
        sid = leg.shard_id
        replica = self.placement.select(sid, now)
        if replica is None:
            self._resolve_leg(leg, _SHED)
            return
        region = replica.region
        home = self.placement.home_region(sid)
        # A dispatch to a PROBING replica is a health test, not a
        # serving decision — the previous primary keeps the title
        # until the replica is readmitted (otherwise every probe
        # cycle would read as failover flapping).
        probe = (
            replica.health is not None
            and replica.health.state is HealthState.PROBING
        )
        if not probe and self.placement.note_serving(
            sid, region, now,
            reason="restore-home" if region == home else "failover",
        ):
            self._note_primary_change(sid, region, now)
        if replica.health is not None:
            replica.health.acquire(now)
            leg.probing = replica
        leg.region = region
        leg.attempt += 1
        self._legs_by_region[region].add(leg)
        answer = self.executors[sid].execute(
            leg.state.query,
            tracer=self._tr, metrics=self._metrics,
            trace_offset_us=now,
        )
        slowdown = self.placement.region_slowdown[region]
        service = answer.service_us * slowdown
        if region != home:
            service += self.config.failover_penalty_us
        if self._tr is not None:
            if leg.span is not None:
                # Re-dispatch after a regional failure: the first
                # attempt's service died with its region.
                self._tr.end(leg.span, now, status="orphaned")
            leg.span = self._tr.begin(
                self._tk_shard[sid],
                f"leg q{leg.state.query.query_id}", now,
                region=region, home=home == region,
            )
        self._server(sid, region).submit(Job(
            service_time=service,
            on_done=self._leg_done_cb,
            args=(leg, leg.attempt, replica, answer, slowdown),
        ))

    def _server(self, shard_id: int, region: int) -> Server:
        server = self._servers.get((shard_id, region))
        if server is None:
            server = Server(
                self.sim, name=f"shard{shard_id}@region{region}"
            )
            self._servers[(shard_id, region)] = server
        return server

    # ------------------------------------------------------------------
    # Leg resolution
    # ------------------------------------------------------------------
    def _leg_done(
        self,
        leg: _Leg,
        attempt: int,
        replica: ShardReplica,
        answer: ShardAnswer,
        slowdown: float,
    ) -> None:
        now = self.sim.now
        if replica.health is not None:
            # Observed-over-baseline ratio: regional slowdown inflates
            # it past 1.0 (the gray-failure signal); the failover hop
            # penalty is a routing cost, not replica slowness, and is
            # deliberately excluded.
            if leg.probing is replica:
                leg.probing = None
            replica.health.record_attempt(
                now, slowdown, 0 if answer.ok else 1
            )
        if (leg.attempt != attempt or leg.status != _PENDING
                or leg.state.finished):
            # Superseded: the leg failed over, was shed, or the query
            # already finalized while this service completed.  The
            # replica's work is wasted but its health was still scored.
            return
        self._legs_by_region[replica.region].discard(leg)
        replica.served += 1
        sid = leg.shard_id
        fresh = replica.region == self.placement.home_region(sid)
        leg.status = _FRESH if fresh else _STALE
        leg.miss = answer.miss
        leg.results = answer.results
        if leg.watchdog is not None:
            self.sim.cancel(leg.watchdog)
        if fresh:
            self._legs_fresh[sid] += 1
        else:
            self._legs_stale[sid] += 1
        if answer.miss:
            self._legs_missed[sid] += 1
        if self._observed:
            self._note_leg_done(leg, answer, fresh, now)
        if self._sink is not None:
            self._sink.emit(
                now, "leg",
                shard=sid,
                status=leg.status,
                region=replica.region,
                miss=answer.miss,
            )
        state = leg.state
        state.resolved += 1
        if state.resolved == len(state.legs):
            self._finalize(state, None)

    def _leg_deadline(self, leg: _Leg) -> None:
        """Per-shard deadline: shed the leg, keep the gather going."""
        if leg.status != _PENDING or leg.state.finished:
            return
        self._resolve_leg(leg, _SHED)

    def _resolve_leg(self, leg: _Leg, status: str) -> None:
        """Mark a pending leg shed and advance the gather."""
        leg.status = status
        leg.attempt += 1  # orphan any in-flight service completion
        if leg.probing is not None:
            leg.probing.health.release()
            leg.probing = None
        if leg.region is not None:
            self._legs_by_region[leg.region].discard(leg)
        if leg.watchdog is not None:
            self.sim.cancel(leg.watchdog)
        sid = leg.shard_id
        self._legs_shed[sid] += 1
        now = self.sim.now
        if self._tr is not None:
            self._tr.end(leg.span, now, status=_SHED)
        if self._metrics is not None:
            self._metrics.counter("fleet.legs.shed").inc()
        if self._sink is not None:
            self._sink.emit(
                now, "leg", shard=sid, status=_SHED, region=leg.region
            )
        state = leg.state
        state.resolved += 1
        if state.resolved == len(state.legs):
            self._finalize(state, None)

    def _query_deadline(self, state: _FleetQueryState) -> None:
        """Query deadline: cut pending legs, answer if quorum holds."""
        if state.finished:
            return
        for leg in state.legs:
            if leg.status == _PENDING:
                leg.status = _SHED
                leg.attempt += 1
                if leg.probing is not None:
                    leg.probing.health.release()
                    leg.probing = None
                if leg.region is not None:
                    self._legs_by_region[leg.region].discard(leg)
                if leg.watchdog is not None:
                    self.sim.cancel(leg.watchdog)
                self._legs_shed[leg.shard_id] += 1
                if self._tr is not None:
                    self._tr.end(leg.span, self.sim.now, status=_SHED)
                if self._metrics is not None:
                    self._metrics.counter("fleet.legs.shed").inc()
                if self._sink is not None:
                    self._sink.emit(
                        self.sim.now, "leg", shard=leg.shard_id,
                        status=_SHED, region=leg.region,
                    )
        answered = sum(
            1 for leg in state.legs if leg.status in (_FRESH, _STALE)
        )
        status = (
            FleetStatus.DEGRADED if answered >= self.config.quorum
            else FleetStatus.TIMED_OUT
        )
        self._finalize(state, status)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _finalize(
        self,
        state: _FleetQueryState,
        status: Optional[FleetStatus],
        shed_reason: Optional[str] = None,
    ) -> None:
        if state.finished:
            return
        state.finished = True
        now = self.sim.now
        if state.deadline_event is not None:
            self.sim.cancel(state.deadline_event)
        fresh = tuple(
            leg.shard_id for leg in state.legs if leg.status == _FRESH
        )
        stale = tuple(
            leg.shard_id for leg in state.legs if leg.status == _STALE
        )
        shed = tuple(
            leg.shard_id for leg in state.legs if leg.status == _SHED
        )
        if status is None:
            answered = len(fresh) + len(stale)
            if not stale and not shed:
                status = FleetStatus.COMPLETE
            elif answered >= self.config.quorum:
                status = FleetStatus.DEGRADED
            else:
                status = FleetStatus.FAILED
        correct = True
        results: Dict[int, List[Any]] = {}
        if status in (FleetStatus.COMPLETE, FleetStatus.DEGRADED):
            for leg in state.legs:
                if leg.status not in (_FRESH, _STALE):
                    continue
                reference = self.executors[leg.shard_id].reference_results(
                    state.query
                )
                payload = list(leg.results or [])
                results[leg.shard_id] = payload
                if payload != reference:
                    correct = False
        query = state.query
        outcome = FleetOutcome(
            query_id=query.query_id,
            status=status,
            arrival_us=query.arrival_us,
            finish_us=now,
            latency_us=now - query.arrival_us,
            shards_fresh=fresh,
            shards_stale=stale,
            shards_shed=shed,
            failovers=len(stale),
            correct=correct,
            shed_reason=shed_reason,
            results=results or None,
        )
        self._outcomes.append(outcome)
        self._last_terminal_us = now
        if self._sink is not None:
            self._sink.emit(
                now, "query",
                query_id=query.query_id,
                status=status.value,
                arrival_us=query.arrival_us,
                latency_us=now - query.arrival_us,
                ok=outcome.ok,
                stale=len(stale),
                reason=shed_reason,
            )
        if state.legs and status is not FleetStatus.SHED:
            self._in_flight -= 1
            if self._observed:
                self._note_in_flight()
        if self._observed:
            self._note_outcome(outcome, now)
        if self._tr is not None:
            self._tr.end(
                state.span, now,
                status=status.value, fresh=len(fresh),
                stale=len(stale), shed=len(shed),
            )

    def _emit_lifecycle_telemetry(self) -> None:
        """Replay replica health trails into the telemetry sink.

        Post-run, like the serving host's: transition ledgers already
        carry their simulated timestamps, so the windowed view places
        them correctly after sorting and the scatter-gather hot path
        pays nothing per transition.  Replicas dropped at
        ``region-repair`` lose their (empty-by-then) trails; the
        quarantine transitions that matter for gray detection belong
        to surviving slowdown-region replicas.
        """
        emit = self._sink.emit
        for sid, placed in enumerate(self.placement.replicas):
            for region in sorted(placed):
                replica = placed[region]
                if replica.health is None:
                    continue
                for ts, fields in health_transition_records(
                    replica.health, region
                ):
                    fields = dict(fields, shard=sid, region=region)
                    fields.pop("replica", None)
                    emit(ts, "health", **fields)

    # ------------------------------------------------------------------
    # Region fault timeline
    # ------------------------------------------------------------------
    def _region_event(self, event) -> None:
        now = self.sim.now
        if self._metrics is not None:
            self._metrics.counter("fleet.region_events").inc()
        if self._tr is not None:
            self._tr.instant(
                self._tk_router, event.kind, now, region=event.region,
            )
        if self._sink is not None:
            self._sink.emit(
                now, "fault",
                event=event.kind,
                region=event.region,
                value=event.value,
            )
        if event.kind == "region-fail":
            self.placement.region_fail(event.region)
            # Legs the dead domain was serving fail over immediately:
            # their in-flight service is lost with the region.
            orphans = [
                leg for leg in self._legs_by_region[event.region]
                if leg.status == _PENDING and not leg.state.finished
            ]
            self._legs_by_region[event.region].clear()
            for leg in orphans:
                if leg.probing is not None:
                    leg.probing.health.release()
                    leg.probing = None
                leg.attempt += 1
                if self._metrics is not None:
                    self._metrics.counter("fleet.failover_redispatches").inc()
                self._dispatch_leg(leg)
            self.rebalancer.ensure_replication()
        elif event.kind == "region-repair":
            came_home = self.placement.region_repair(event.region)
            self.rebalancer.restore_home(came_home)
            self.rebalancer.ensure_replication()
        else:  # region-slowdown
            self.placement.set_slowdown(event.region, event.value)

    # ------------------------------------------------------------------
    # Rebalance callbacks
    # ------------------------------------------------------------------
    def _rebuild_done(self, job: CopyJob) -> None:
        self._rebuilds[job.shard_id] += 1
        now = self.sim.now
        if self._metrics is not None:
            self._metrics.counter("fleet.rebuilds.completed").inc()
        if self._tr is not None:
            self._tr.instant(
                self._tk_shard[job.shard_id], "rebuild-done", now,
                region=job.target_region, kind=job.kind,
            )
        # Serving reverts to the restored copy if it is now preferred
        # over the current primary (a home restore, typically).  The
        # next dispatched leg records the primary change.

    def _rebuild_aborted(self, job: CopyJob) -> None:
        if self._metrics is not None:
            self._metrics.counter("fleet.rebuilds.aborted").inc()
        if self._tr is not None:
            self._tr.instant(
                self._tk_shard[job.shard_id], "rebuild-aborted",
                self.sim.now, region=job.target_region,
            )

    # ------------------------------------------------------------------
    # Observability (all callers behind `self._observed` / `self._tr`)
    # ------------------------------------------------------------------
    def _note_primary_change(self, shard_id: int, region: int,
                             now: float) -> None:
        if self._tr is not None:
            self._tr.instant(
                self._tk_shard[shard_id], "failover", now,
                to_region=region,
                home=self.placement.home_region(shard_id),
            )
        if self._metrics is not None:
            self._metrics.counter("fleet.primary_changes").inc()

    def _note_in_flight(self) -> None:
        now = self.sim.now
        if self._tr is not None:
            self._tr.counter(
                self._tk_router, "in_flight", now, self._in_flight
            )
        if self._metrics is not None:
            self._metrics.gauge("fleet.in_flight").set(
                now, self._in_flight
            )

    def _note_leg_done(self, leg: _Leg, answer: ShardAnswer,
                       fresh: bool, now: float) -> None:
        if self._tr is not None:
            self._tr.end(
                leg.span, now,
                status=leg.status, miss=answer.miss,
            )
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(
                "fleet.legs.fresh" if fresh else "fleet.legs.stale"
            ).inc()
            if answer.miss:
                metrics.counter("fleet.legs.miss").inc()
            metrics.histogram("fleet.leg.service_us").observe(
                answer.service_us
            )

    def _note_outcome(self, outcome: FleetOutcome, now: float) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        metrics.counter(f"fleet.queries.{outcome.status.value}").inc()
        if outcome.status in (FleetStatus.COMPLETE, FleetStatus.DEGRADED):
            metrics.histogram("fleet.latency_us").observe(
                outcome.latency_us
            )
            if outcome.failovers:
                metrics.counter("fleet.failovers").inc(outcome.failovers)

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def _build_report(self) -> FleetReport:
        final_replication = self.placement.replication_counts()
        if self._metrics is not None:
            self._metrics.gauge("fleet.replication.min").set(
                self.sim.now,
                min(final_replication) if final_replication else 0,
            )
        changes_per_shard = [0] * len(self.shards)
        for change in self.placement.primary_changes:
            changes_per_shard[change.shard_id] += 1
        shards = [
            ShardSummary(
                shard_id=shard.shard_id,
                num_nodes=shard.num_nodes,
                home_region=self.placement.home_region(shard.shard_id),
                serving_region=self.placement.serving_region(
                    shard.shard_id
                ),
                replication=final_replication[shard.shard_id],
                legs_fresh=self._legs_fresh[shard.shard_id],
                legs_stale=self._legs_stale[shard.shard_id],
                legs_shed=self._legs_shed[shard.shard_id],
                legs_missed=self._legs_missed[shard.shard_id],
                primary_changes=changes_per_shard[shard.shard_id],
                rebuilds=self._rebuilds[shard.shard_id],
            )
            for shard in self.shards
        ]
        return FleetReport(
            outcomes=self._outcomes,
            shards=shards,
            total_time_us=self._last_terminal_us,
            primary_changes=list(self.placement.primary_changes),
            rebuilds_completed=self.rebalancer.completed,
            rebuilds_aborted=self.rebalancer.aborted,
            final_replication=final_replication,
            replication_factor=self.config.replication_factor,
        )
