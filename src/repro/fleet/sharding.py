"""KB sharding: induced subgraphs + per-shard nested execution.

The fleet partitions one logical knowledge base into ``num_shards``
**shards** using a :mod:`repro.network.partition` policy (community
partitioning by default, so each shard holds semantically related
concepts and most marker traffic stays shard-local).  Each shard is an
*induced subgraph*: its nodes keep their names, and only links whose
both endpoints live on the shard survive — exactly the data a replica
group of that shard would store.

:class:`ShardExecutor` wraps one shard in a nested
:class:`repro.machine.SnapMachine` and answers queries through the full
PU/MU/CU cost model.  Replicas of a shard are byte-identical and the
nested simulator is deterministic, so one executor per shard answers
for **every** replica: per-replica differences (regional slowdown,
cross-region failover hops) are latency adjustments applied by the
router, not separate simulations.

A query whose search roots are absent from a shard is a **miss**: the
executor detects this by pre-scanning the program's name operands
(running the machine would raise ``GraphError`` at resolve time) and
charges only a fixed name-table lookup cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..isa.program import SnapProgram
from ..machine.config import MachineConfig, Timing
from ..machine.machine import SnapMachine
from ..network.graph import SemanticNetwork
from ..network.partition import make_partition
from ..obs.tracer import NULL_TRACER
from .config import FleetConfig


class FleetError(ValueError):
    """Raised for invalid fleet-level requests."""


@dataclass(frozen=True)
class Shard:
    """One slice of the KB: an induced subgraph plus its provenance."""

    shard_id: int
    #: The shard's induced subgraph (names preserved, ids re-densified).
    network: SemanticNetwork
    #: Global node ids this shard holds, ascending.
    global_ids: Tuple[int, ...]
    #: Node names this shard holds (the routing name table).
    names: FrozenSet[str]

    @property
    def num_nodes(self) -> int:
        return len(self.global_ids)


def build_shards(
    network: SemanticNetwork, config: FleetConfig
) -> List[Shard]:
    """Partition the KB into induced subgraphs, one per shard.

    Deterministic: the partition policies draw no RNG, nodes are added
    to each subgraph in ascending global-id order, and links in the
    parent network's iteration order.
    """
    partitioning = make_partition(
        network, config.num_shards, policy=config.partition_policy
    )
    shards: List[Shard] = []
    for sid in range(config.num_shards):
        members = partitioning.members(sid)
        member_set = set(members)
        sub = SemanticNetwork()
        names = []
        for nid in members:
            node = network.node(nid)
            sub.add_node(node.name, node.color, node.function)
            names.append(node.name)
        for link in network.links():
            if link.source in member_set and link.dest in member_set:
                sub.add_link(
                    network.node(link.source).name,
                    network.relations.name_of(link.relation),
                    network.node(link.dest).name,
                    link.weight,
                )
        shards.append(
            Shard(
                shard_id=sid,
                network=sub,
                global_ids=tuple(members),
                names=frozenset(names),
            )
        )
    return shards


@dataclass(slots=True)
class ShardAnswer:
    """What one shard's nested execution produced for a query."""

    #: Simulated service time on the shard machine, in µs (excludes
    #: regional slowdown and failover hops — the router adds those).
    service_us: float
    #: True when the answer carries no query-visible fault damage.
    ok: bool
    #: True when the query's search roots are absent from this shard
    #: (an empty answer at name-table-lookup cost).
    miss: bool = False
    #: Collected retrieval results, in program order.
    results: Optional[List[Any]] = None


#: Instruction attributes that carry a node-name operand (``forward``
#: and ``reverse`` on the MARKER ops are *relation* names — excluded).
_NAME_ATTRS = ("node", "source", "end")


class ShardExecutor:
    """Nested machine for one shard, with per-template caching.

    Shard replicas are identical and the nested simulation is
    deterministic, so ``(template, shard)`` fully determines the
    answer; repeated templates cost one simulation total.
    """

    def __init__(
        self,
        shard: Shard,
        config: FleetConfig,
        timing: Optional[Timing] = None,
    ) -> None:
        self.shard = shard
        self.config = config
        self.machine: Optional[SnapMachine] = None
        if shard.num_nodes:
            machine_cfg = MachineConfig(
                num_clusters=config.clusters_per_shard,
                mus_per_cluster=config.mus_per_cluster,
                partition_policy=config.partition_policy,
                timing=timing or Timing(),
            )
            self.machine = SnapMachine(shard.network, machine_cfg)
            self.machine.trace_name = f"shard {shard.shard_id:02d}"
        self._cache: Dict[str, ShardAnswer] = {}
        self.executions = 0
        self.cache_hits = 0

    def _covers(self, program: SnapProgram) -> bool:
        """Whether every name operand of the program is on this shard.

        Fleet queries must reference nodes **by name** — a raw node id
        is ambiguous across shards (ids re-densify per subgraph).
        """
        names = self.shard.names
        for instr in program:
            for attr in _NAME_ATTRS:
                ref = getattr(instr, attr, None)
                if ref is None:
                    continue
                if not isinstance(ref, str):
                    raise FleetError(
                        "fleet queries must reference nodes by name; "
                        f"{instr.opcode} carries id operand {ref!r}"
                    )
                if ref not in names:
                    return False
        return True

    def execute(self, query, tracer=None, metrics=None,
                trace_offset_us: float = 0.0) -> ShardAnswer:
        """Answer one query leg on this shard (cached per template).

        Cache hits replay the stored timing without re-simulating;
        like the host's replica array, only the first execution of a
        template emits machine-level trace tracks.
        """
        template = getattr(query, "template", None)
        if template is not None:
            hit = self._cache.get(template)
            if hit is not None:
                self.cache_hits += 1
                return hit
        answer = self._execute(query.program, tracer, metrics,
                               trace_offset_us)
        if template is not None:
            self._cache[template] = answer
        return answer

    def _execute(self, program: SnapProgram, tracer, metrics,
                 trace_offset_us: float) -> ShardAnswer:
        if self.machine is None or not self._covers(program):
            return ShardAnswer(
                service_us=self.config.name_miss_service_us,
                ok=True, miss=True, results=[],
            )
        self.executions += 1
        self.machine.reset_markers()
        report = self.machine.run(
            program, tracer=tracer, metrics=metrics,
            trace_offset_us=trace_offset_us,
        )
        damage = 0
        if report.faults_enabled and report.fault_stats is not None:
            damage = report.fault_stats.query_visible_failures()
        return ShardAnswer(
            service_us=report.total_time_us,
            ok=damage == 0 and not report.aborted,
            results=report.results(),
        )

    def base_service_us(self, query) -> float:
        """Undegraded service time for a query leg (cached).

        The health detector's service-ratio baseline and the router's
        deadline estimates both key off this; it deliberately excludes
        regional slowdown and failover penalties so a slowed region's
        ratio rises above 1.0.
        """
        return self.execute(query, tracer=NULL_TRACER).service_us

    def reference_results(self, query) -> List[Any]:
        """Ground-truth answer of this shard for correctness checks.

        Shard machines are fault-free and the KB is immutable, so the
        cached execution *is* the reference — a stale (non-home) serve
        returns the same payload, just later.
        """
        answer = self.execute(query, tracer=NULL_TRACER)
        return list(answer.results or [])
