"""SNAP-1: Semantic Network Array Processor — a Python reproduction.

Reproduction of *"The SNAP-1 Parallel AI Prototype"* (R. F. DeMara and
D. I. Moldovan, ISCA 1991): a marker-propagation architecture for
knowledge representation and reasoning, built as a 144-processor,
32-cluster array with multiport memories, a 4-ary hypercube
interconnect, and tiered barrier synchronization.

Packages
--------
``repro.network``
    Semantic-network substrate: nodes, relations, layered knowledge
    bases, partitioning, synthetic generation.
``repro.isa``
    The 20-instruction marker-propagation ISA of Table II, propagation
    rules, marker functions, programs, and the assembler.
``repro.core``
    Distributed knowledge-base tables (Fig. 4), activation messages,
    and exact instruction semantics.
``repro.machine``
    Discrete-event simulator of the SNAP-1 hardware: clusters
    (PU/MU/CU), global bus, hypercube ICN, tiered synchronization,
    controller pipeline, performance-collection network.
``repro.baselines``
    Serial (single-PE) and CM-2-style SIMD comparison machines.
``repro.apps``
    NLU parsing, property inheritance, and concept classification.
``repro.analysis``
    Instruction profiles, speedup, traffic, and overhead analysis.
``repro.experiments``
    One module per table/figure of the paper's evaluation.
"""

__version__ = "1.0.0"

from .network import KnowledgeBaseBuilder, SemanticNetwork, generate_kb
from .isa import SnapProgram, assemble
from .core import FunctionalEngine, MachineState, run_program

__all__ = [
    "__version__",
    "KnowledgeBaseBuilder",
    "SemanticNetwork",
    "generate_kb",
    "SnapProgram",
    "assemble",
    "FunctionalEngine",
    "MachineState",
    "run_program",
]
