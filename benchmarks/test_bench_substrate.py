"""Substrate kernels: the primitives every experiment exercises."""

import pytest

from repro.core.tables import MarkerStatusTable
from repro.machine import HypercubeTopology
from repro.network import (
    GeneratorSpec,
    generate_kb,
    make_partition,
    preprocess_fanout,
)


class TestStatusTableKernels:
    """The MU's word-parallel marker operations (Fig. 4)."""

    @pytest.fixture(scope="class")
    def table(self):
        table = MarkerStatusTable(1024)
        for node in range(0, 1024, 3):
            table.set(1, node)
        for node in range(0, 1024, 5):
            table.set(2, node)
        return table

    def test_and_rows(self, benchmark, table):
        benchmark(table.and_rows, 1, 2, 3)

    def test_nodes_with(self, benchmark, table):
        result = benchmark(table.nodes_with, 1)
        assert len(result) == 342

    def test_set_clear_cycle(self, benchmark, table):
        def cycle():
            table.set_all(7)
            table.clear_all(7)

        benchmark(cycle)


class TestGraphKernels:
    def test_kb_generation(self, benchmark):
        net = benchmark(generate_kb, GeneratorSpec(total_nodes=1000))
        assert net.num_nodes > 900

    def test_fanout_preprocessing(self, benchmark, synthetic_kb):
        benchmark(preprocess_fanout, synthetic_kb)

    @pytest.mark.parametrize("policy", ["round-robin", "semantic"])
    def test_partitioning(self, benchmark, synthetic_kb, policy):
        part = benchmark(
            make_partition, synthetic_kb, 32, policy,
            synthetic_kb.num_nodes,
        )
        assert part.num_nodes == synthetic_kb.num_nodes


class TestIcnKernels:
    def test_routing_all_pairs(self, benchmark):
        topo = HypercubeTopology(32)

        def all_pairs():
            hops = 0
            for src in range(32):
                for dst in range(32):
                    hops += len(topo.route(src, dst))
            return hops

        total = benchmark(all_pairs)
        assert total > 0
