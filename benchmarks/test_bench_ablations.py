"""Ablations of SNAP-1's design choices (§II-C architectural features).

Each benchmark disables or varies one mechanism the paper argues for,
and asserts the direction of the effect:

* **instruction overlap** (β-parallelism): queue depth 1 vs 64;
* **marker units per cluster** (α exploitation): 1 vs 3 MUs;
* **allocation policy** (semantic locality): round-robin vs semantic;
* **message packing** (bfloat16 wire truncation): results must agree.
"""

from dataclasses import replace

import pytest

from repro.apps.nlu import MemoryBasedParser, build_domain_kb, sentences
from repro.experiments import make_alpha_workload, make_beta_workload
from repro.machine import MachineConfig, SnapMachine, snap1_16cluster


class TestInstructionOverlapAblation:
    """Without overlap, β-parallel workloads serialize at the
    controller: the 64-deep PU instruction queue is what buys the
    Fig. 17 speedups."""

    def _time(self, depth: int) -> float:
        workload = make_beta_workload(beta=8, alpha_per_stream=8)
        config = replace(
            snap1_16cluster(), instruction_queue_depth=depth,
            partition_policy="semantic",
        )
        machine = SnapMachine(workload.network, config)
        return machine.run(workload.program).total_time_us

    def test_overlap_ablation(self, benchmark):
        times = benchmark.pedantic(
            lambda: (self._time(1), self._time(64)),
            iterations=1, rounds=1,
        )
        serialized, overlapped = times
        assert overlapped < serialized
        assert serialized / overlapped > 1.5


class TestMarkerUnitAblation:
    """Cluster-internal MU pool: resource sharing for α-parallelism."""

    @pytest.mark.parametrize("mus", [1, 3])
    def test_parse_with_mu_count(self, benchmark, domain_kb, mus):
        config = MachineConfig(num_clusters=16, mus_per_cluster=mus,
                               partition_policy="semantic")

        def run():
            machine = SnapMachine(domain_kb.network, config)
            return MemoryBasedParser(machine, domain_kb).parse(
                sentences()[1]
            )

        result = benchmark(run)
        assert result.winner is not None

    def test_more_mus_help_alpha_work(self, benchmark):
        def run():
            times = {}
            for mus in (1, 3):
                workload = make_alpha_workload(256, path_length=8)
                config = MachineConfig(
                    num_clusters=16, mus_per_cluster=mus,
                    partition_policy="semantic",
                )
                machine = SnapMachine(workload.network, config)
                times[mus] = machine.run(workload.program).total_time_us
            return times

        times = benchmark.pedantic(run, iterations=1, rounds=1)
        assert times[3] < times[1]


class TestAllocationAblation:
    """Semantically-based allocation cuts cross-cluster traffic."""

    def test_semantic_allocation_reduces_messages(self, benchmark, domain_kb):
        def run():
            messages = {}
            for policy in ("round-robin", "semantic"):
                config = MachineConfig(
                    num_clusters=16, mus_per_cluster=3,
                    partition_policy=policy,
                )
                machine = SnapMachine(domain_kb.network, config)
                parser = MemoryBasedParser(machine, domain_kb,
                                           keep_trace=True)
                parser.parse(sentences()[0])
                messages[policy] = sum(
                    r.icn_stats.messages for _p, r in parser.trace_log
                )
            return messages

        messages = benchmark.pedantic(run, iterations=1, rounds=1)
        assert messages["semantic"] < messages["round-robin"]


class TestMessagePackingAblation:
    """The 64-bit wire format truncates values to bfloat16; parse
    outcomes must survive the precision loss."""

    def test_packed_vs_exact_same_winner(self, benchmark, domain_kb):
        def run():
            winners = {}
            for packed in (False, True):
                config = MachineConfig(
                    num_clusters=16, mus_per_cluster=3,
                    partition_policy="semantic", pack_messages=packed,
                )
                machine = SnapMachine(domain_kb.network, config)
                parser = MemoryBasedParser(machine, domain_kb)
                winners[packed] = parser.parse(sentences()[0]).winner
            return winners

        winners = benchmark.pedantic(run, iterations=1, rounds=1)
        assert winners[False] == winners[True]
