"""Benchmark behind Fig. 15: inheritance on SNAP-1 vs CM-2."""

import pytest

from repro.apps.inheritance import inheritance_program
from repro.baselines import SimdMachine
from repro.machine import SnapMachine, snap1_full
from repro.network import generate_hierarchy_kb


class TestFig15Inheritance:
    @pytest.mark.parametrize("nodes", [800, 3200])
    def test_snap1_inheritance(self, benchmark, nodes):
        def run():
            machine = SnapMachine(
                generate_hierarchy_kb(nodes), snap1_full()
            )
            return machine.run(inheritance_program())

        report = benchmark(run)
        assert report.total_time_us < 1e6  # < 1 s simulated (paper)

    def test_cm2_inheritance(self, benchmark):
        def run():
            machine = SimdMachine(generate_hierarchy_kb(3200))
            return machine.run(inheritance_program())

        report = benchmark(run)
        assert report.total_time_us < 10e6  # < 10 s simulated (paper)

    def test_snap_beats_cm2_at_6k(self, benchmark):
        def run():
            snap = SnapMachine(
                generate_hierarchy_kb(6400), snap1_full()
            ).run(inheritance_program())
            simd = SimdMachine(generate_hierarchy_kb(6400)).run(
                inheritance_program()
            )
            return snap, simd

        snap, simd = benchmark.pedantic(run, iterations=1, rounds=1)
        assert snap.total_time_us < simd.total_time_us
