"""Benchmark behind Tables III/IV: MUC-4 sentence parsing."""

import pytest

from repro.apps.nlu import MUC4_SENTENCES, MemoryBasedParser
from repro.machine import SnapMachine, snap1_16cluster


@pytest.mark.parametrize("sid,text", MUC4_SENTENCES)
def test_parse_sentence(benchmark, domain_kb, sid, text):
    machine = SnapMachine(domain_kb.network, snap1_16cluster())
    parser = MemoryBasedParser(machine, domain_kb)
    result = benchmark(parser.parse, text)
    # Table IV shape: real-time performance — simulated parse time
    # far below a human reading speed (~2 words/second).
    assert result.total_time_us < result.num_words * 500_000
    assert result.winner is not None
