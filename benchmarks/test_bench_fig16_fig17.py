"""Benchmarks behind Figs. 16/17: α and β speedup workloads."""

import pytest

from repro.baselines import SerialMachine
from repro.experiments import make_alpha_workload, make_beta_workload
from repro.machine import SnapMachine, snap1_16cluster


class TestFig16AlphaWorkloads:
    @pytest.mark.parametrize("alpha", [10, 100, 1000])
    def test_snap_72pe(self, benchmark, alpha):
        def run():
            workload = make_alpha_workload(alpha, path_length=10)
            machine = SnapMachine(workload.network, snap1_16cluster())
            return machine.run(workload.program)

        report = benchmark(run)
        assert report.total_time_us > 0

    def test_speedup_shape_alpha100(self, benchmark):
        """Fig. 16 anchor: α≈100 yields double-digit speedup at 72 PEs."""

        def run():
            workload = make_alpha_workload(100, path_length=10)
            serial = SerialMachine(workload.network).run(workload.program)
            snap = SnapMachine(
                make_alpha_workload(100, path_length=10).network,
                snap1_16cluster(),
            ).run(workload.program)
            return serial.total_time_us / snap.total_time_us

        speedup = benchmark.pedantic(run, iterations=1, rounds=1)
        assert speedup > 10.0


class TestFig17BetaWorkloads:
    @pytest.mark.parametrize("beta", [1, 16, 32])
    def test_snap_beta(self, benchmark, beta):
        def run():
            workload = make_beta_workload(beta, alpha_per_stream=4)
            machine = SnapMachine(workload.network, snap1_16cluster())
            return machine.run(workload.program)

        report = benchmark(run)
        assert report.total_time_us > 0

    def test_saturation_shape(self, benchmark):
        """Fig. 17 anchor: β 16→32 gains much less than β 1→16."""

        def run():
            times = {}
            for beta in (1, 16, 32):
                workload = make_beta_workload(beta, alpha_per_stream=4)
                serial = SerialMachine(workload.network).run(
                    workload.program
                )
                snap = SnapMachine(
                    make_beta_workload(beta, alpha_per_stream=4).network,
                    snap1_16cluster(),
                ).run(workload.program)
                times[beta] = serial.total_time_us / snap.total_time_us
            return times

        speedups = benchmark.pedantic(run, iterations=1, rounds=1)
        gain_low = speedups[16] / speedups[1]
        gain_high = speedups[32] / speedups[16]
        assert gain_high < gain_low
