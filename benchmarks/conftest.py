"""Shared benchmark fixtures (built once per session)."""

import pytest

from repro.apps.nlu import build_domain_kb
from repro.network import GeneratorSpec, generate_kb


@pytest.fixture(scope="session")
def domain_kb():
    return build_domain_kb(total_nodes=2000)


@pytest.fixture(scope="session")
def synthetic_kb():
    return generate_kb(GeneratorSpec(total_nodes=2000))
