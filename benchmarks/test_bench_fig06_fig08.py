"""Benchmarks behind Figs. 6 and 8: uniprocessor profile + traffic.

Each benchmark times the simulator work that regenerates the figure;
the asserted properties are the figure's headline shape.
"""

import pytest

from repro.apps.nlu import MemoryBasedParser, sentences
from repro.baselines import SerialMachine
from repro.machine import SnapMachine, snap1_16cluster


class TestFig06UniprocessorProfile:
    def test_serial_parse(self, benchmark, domain_kb):
        machine = SerialMachine(domain_kb.network)
        parser = MemoryBasedParser(machine, domain_kb)
        result = benchmark(parser.parse, sentences()[1])
        assert result.winner is not None
        # Fig. 6 shape: propagation's time share exceeds its
        # frequency share on one processor.
        time_share = result.category_time_us["propagate"] / sum(
            result.category_time_us.values()
        )
        freq_share = result.category_counts["propagate"] / sum(
            result.category_counts.values()
        )
        assert time_share > freq_share


class TestFig08MarkerTraffic:
    def test_timed_parse_with_sync_stats(self, benchmark, domain_kb):
        machine = SnapMachine(domain_kb.network, snap1_16cluster())
        parser = MemoryBasedParser(machine, domain_kb, keep_trace=True)

        def parse():
            parser.trace_log.clear()
            return parser.parse(sentences()[1])

        result = benchmark(parse)
        series = []
        for _program, report in parser.trace_log:
            series.extend(report.sync_stats.messages_per_sync())
        # Fig. 8 shape: bursty traffic.
        assert max(series) > 2 * (sum(series) / len(series) / 2)
        assert result.mb_time_us > 0
