"""Wall-clock harness (``python -m repro bench``): sanity + smoke.

The other files in this directory benchmark individual kernels with
pytest-benchmark; this one exercises the ``repro.bench`` harness
itself — the trajectory tool CI runs with ``--smoke`` — so a broken
workload or malformed BENCH_PERF.json fails here rather than in CI.
"""

import json
import platform
import statistics

import pytest

from repro.bench import (
    DEFAULT_OUT,
    WORKLOADS,
    BackendDivergenceError,
    _scrub_nondeterministic,
    main,
    run_bench,
)


class TestRunBench:
    def test_propagate_smoke_counts_events(self):
        record = run_bench(["propagate"], smoke=True)
        assert record["smoke"] is True
        row = record["workloads"]["propagate"]
        assert row["events"] > 0
        assert row["wall_s"] > 0
        assert row["events_per_sec"] > 0
        assert row["runs"] > 0

    def test_faults_smoke_counts_events(self):
        row = run_bench(["faults"], smoke=True)["workloads"]["faults"]
        assert row["events"] > 0
        assert row["events_per_sec"] > 0

    def test_overload_smoke_serves_and_sheds(self):
        row = run_bench(["overload"], smoke=True)["workloads"]["overload"]
        assert row["events"] > 0
        assert row["events_per_sec"] > 0
        # Sustained 2x overload must actually shed; if it does not, the
        # workload no longer stresses the cancellation-heavy path.
        assert row["served"] > 0
        assert row["shed"] > 0
        assert row["served"] + row["shed"] == row["queries"]

    def test_event_counts_are_deterministic(self):
        """The byte-identical-reports guarantee, seen from the bench:
        event counts never move between runs — only wall time does."""
        first = run_bench(["propagate"], smoke=True)
        second = run_bench(["propagate"], smoke=True)
        assert (
            first["workloads"]["propagate"]["events"]
            == second["workloads"]["propagate"]["events"]
        )

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_bench(["no-such-workload"], smoke=True)

    def test_default_selection_covers_all_workloads(self):
        assert set(WORKLOADS) == {
            "propagate", "propagate-vec", "faults", "overload", "dispatch",
        }

    def test_dispatch_smoke_counts_events(self):
        row = run_bench(["dispatch"], smoke=True)["workloads"]["dispatch"]
        assert row["events"] > 0
        assert row["events_per_sec"] > 0

    def test_propagate_backend_lane(self):
        """--backend flips the propagate lane onto the functional
        engine; both backends report identical event counts."""
        rows = {
            backend: run_bench(
                ["propagate"], smoke=True, backend=backend
            )["workloads"]["propagate"]
            for backend in ("python", "vectorized")
        }
        assert rows["python"]["backend"] == "python"
        assert rows["vectorized"]["backend"] == "vectorized"
        assert rows["python"]["events"] == rows["vectorized"]["events"]
        assert rows["python"]["events"] > 0

    def test_propagate_vec_equivalence_and_speedup(self):
        row = run_bench(["propagate-vec"], smoke=True)[
            "workloads"]["propagate-vec"]
        assert row["equivalent"] is True
        assert set(row["backends"]) == {"python", "vectorized"}
        for sub in row["backends"].values():
            assert sub["events"] > 0
        # Even at smoke sizes the vectorized backend should be well
        # ahead; the 10x acceptance figure is measured at full size.
        assert row["speedup"] >= 3.0

    def test_unreliable_wall_flagged(self, monkeypatch):
        """A lane finishing below the clock floor is flagged, not
        reported as a confident events/sec figure."""
        import repro.bench as bench

        monkeypatch.setitem(
            bench._RUNNERS, "propagate",
            lambda smoke, backend: {"events": 5, "wall_s": 1e-7},
        )
        row = run_bench(["propagate"], smoke=True)["workloads"]["propagate"]
        assert row["unreliable"] is True
        assert row["events_per_sec"] > 0

    def test_noisy_per_run_walls_flagged_unreliable(self, monkeypatch):
        """Per-run walls scattering beyond the relative-stdev threshold
        flag the lane even when the total wall is comfortably above the
        clock floor."""
        import repro.bench as bench

        walls = [0.010, 0.011, 0.050]  # one 5x outlier run
        monkeypatch.setitem(
            bench._RUNNERS, "propagate",
            lambda smoke, backend: {
                "events": 5000, **bench._wall_stats(walls),
            },
        )
        row = run_bench(["propagate"], smoke=True)["workloads"]["propagate"]
        assert row["unreliable"] is True

    def test_steady_per_run_walls_not_flagged(self, monkeypatch):
        import repro.bench as bench

        walls = [0.010, 0.0101, 0.0099, 0.0102]
        monkeypatch.setitem(
            bench._RUNNERS, "propagate",
            lambda smoke, backend: {
                "events": 5000, **bench._wall_stats(walls),
            },
        )
        row = run_bench(["propagate"], smoke=True)["workloads"]["propagate"]
        assert "unreliable" not in row

    def test_lanes_record_per_run_wall_stats(self):
        record = run_bench(["propagate", "dispatch"], smoke=True)
        for lane in ("propagate", "dispatch"):
            row = record["workloads"][lane]
            walls = row["wall_runs"]
            assert len(walls) >= 2
            assert row["wall_s"] == pytest.approx(sum(walls))
            assert row["wall_min_s"] == min(walls)
            assert row["wall_median_s"] == statistics.median(walls)
            assert row["wall_stdev_s"] == pytest.approx(
                statistics.stdev(walls)
            )

    def test_overload_lane_is_one_run(self):
        row = run_bench(["overload"], smoke=True)["workloads"]["overload"]
        assert len(row["wall_runs"]) == 1
        assert row["wall_stdev_s"] == 0.0

    def test_environment_fingerprint_stamped(self):
        record = run_bench(["dispatch"], smoke=True, backend="python")
        env = record["environment"]
        assert env["python"] == platform.python_version()
        assert env["backend"] == "python"
        assert env["smoke"] is True
        assert env["cpu_count"] is None or env["cpu_count"] >= 1

    def test_scrub_drops_all_timing_and_environment_keys(self):
        record = run_bench(["propagate"], smoke=True)
        scrubbed = _scrub_nondeterministic(
            {"environment": record["environment"], **record["workloads"]}
        )
        flat = json.dumps(scrubbed)
        for key in ("wall_s", "wall_runs", "wall_min_s", "wall_median_s",
                    "wall_stdev_s", "events_per_sec", "environment"):
            assert key not in flat
        assert "events" in scrubbed["propagate"]

    def test_backend_divergence_raises_with_record(self, monkeypatch):
        import repro.bench as bench

        digests = iter(["aaa", "bbb"])

        def fake(smoke, backend, nodes):
            return (
                {"events": 10, **bench._wall_stats([0.01]), "runs": 1,
                 "nodes": nodes, "clusters": 16, "backend": backend},
                next(digests),
            )

        monkeypatch.setattr(bench, "_functional_propagate", fake)
        with pytest.raises(BackendDivergenceError) as excinfo:
            run_bench(["propagate-vec"], smoke=True)
        assert excinfo.value.record["equivalent"] is False


class TestCli:
    def test_main_writes_trajectory_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_PERF.json"
        assert main(["propagate", "--smoke", "--out", str(out),
                     "--no-history"]) == 0
        record = json.loads(out.read_text())
        assert record["bench"] == "snap1-hot-path"
        assert record["smoke"] is True
        assert "python" in record
        assert "propagate" in record["workloads"]
        printed = capsys.readouterr().out
        assert "ev/s" in printed
        assert str(out) in printed

    def test_main_appends_history_records(self, tmp_path):
        from repro.obs.perf.history import load_history

        out = tmp_path / "BENCH_PERF.json"
        hist = tmp_path / "BENCH_HISTORY.jsonl"
        for _ in range(2):
            assert main(["dispatch", "--smoke", "--out", str(out),
                         "--history", str(hist)]) == 0
        records = load_history(str(hist))
        assert len(records) == 2
        assert records[0]["lane"] == "dispatch"
        assert records[0]["environment"]["python"]
        assert records[0]["wall_runs"]

    def test_no_history_skips_append(self, tmp_path):
        out = tmp_path / "BENCH_PERF.json"
        hist = tmp_path / "BENCH_HISTORY.jsonl"
        assert main(["dispatch", "--smoke", "--out", str(out),
                     "--history", str(hist), "--no-history"]) == 0
        assert not hist.exists()

    def test_divergence_exits_nonzero_with_message(
        self, tmp_path, monkeypatch, capsys
    ):
        """The smoke path's failure mode is an exit code and a
        diagnostic, not a traceback."""
        import repro.bench as bench

        digests = iter(["aaa", "bbb"])

        def fake(smoke, backend, nodes):
            return (
                {"events": 10, **bench._wall_stats([0.01]), "runs": 1,
                 "nodes": nodes, "clusters": 16, "backend": backend},
                next(digests),
            )

        monkeypatch.setattr(bench, "_functional_propagate", fake)
        out = tmp_path / "BENCH_PERF.json"
        code = main(["propagate-vec", "--smoke", "--out", str(out),
                     "--no-history"])
        assert code == 1
        err = capsys.readouterr().err
        assert "divergence" in err
        assert "equivalence gate" in err
        assert not out.exists()  # no trajectory written on divergence

    def test_default_out_is_repo_trajectory_file(self):
        assert DEFAULT_OUT == "BENCH_PERF.json"
