"""Wall-clock harness (``python -m repro bench``): sanity + smoke.

The other files in this directory benchmark individual kernels with
pytest-benchmark; this one exercises the ``repro.bench`` harness
itself — the trajectory tool CI runs with ``--smoke`` — so a broken
workload or malformed BENCH_PERF.json fails here rather than in CI.
"""

import json

import pytest

from repro.bench import DEFAULT_OUT, WORKLOADS, main, run_bench


class TestRunBench:
    def test_propagate_smoke_counts_events(self):
        record = run_bench(["propagate"], smoke=True)
        assert record["smoke"] is True
        row = record["workloads"]["propagate"]
        assert row["events"] > 0
        assert row["wall_s"] > 0
        assert row["events_per_sec"] > 0
        assert row["runs"] > 0

    def test_faults_smoke_counts_events(self):
        row = run_bench(["faults"], smoke=True)["workloads"]["faults"]
        assert row["events"] > 0
        assert row["events_per_sec"] > 0

    def test_overload_smoke_serves_and_sheds(self):
        row = run_bench(["overload"], smoke=True)["workloads"]["overload"]
        assert row["events"] > 0
        assert row["events_per_sec"] > 0
        # Sustained 2x overload must actually shed; if it does not, the
        # workload no longer stresses the cancellation-heavy path.
        assert row["served"] > 0
        assert row["shed"] > 0
        assert row["served"] + row["shed"] == row["queries"]

    def test_event_counts_are_deterministic(self):
        """The byte-identical-reports guarantee, seen from the bench:
        event counts never move between runs — only wall time does."""
        first = run_bench(["propagate"], smoke=True)
        second = run_bench(["propagate"], smoke=True)
        assert (
            first["workloads"]["propagate"]["events"]
            == second["workloads"]["propagate"]["events"]
        )

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_bench(["no-such-workload"], smoke=True)

    def test_default_selection_covers_all_workloads(self):
        assert set(WORKLOADS) == {
            "propagate", "propagate-vec", "faults", "overload", "dispatch",
        }

    def test_dispatch_smoke_counts_events(self):
        row = run_bench(["dispatch"], smoke=True)["workloads"]["dispatch"]
        assert row["events"] > 0
        assert row["events_per_sec"] > 0

    def test_propagate_backend_lane(self):
        """--backend flips the propagate lane onto the functional
        engine; both backends report identical event counts."""
        rows = {
            backend: run_bench(
                ["propagate"], smoke=True, backend=backend
            )["workloads"]["propagate"]
            for backend in ("python", "vectorized")
        }
        assert rows["python"]["backend"] == "python"
        assert rows["vectorized"]["backend"] == "vectorized"
        assert rows["python"]["events"] == rows["vectorized"]["events"]
        assert rows["python"]["events"] > 0

    def test_propagate_vec_equivalence_and_speedup(self):
        row = run_bench(["propagate-vec"], smoke=True)[
            "workloads"]["propagate-vec"]
        assert row["equivalent"] is True
        assert set(row["backends"]) == {"python", "vectorized"}
        for sub in row["backends"].values():
            assert sub["events"] > 0
        # Even at smoke sizes the vectorized backend should be well
        # ahead; the 10x acceptance figure is measured at full size.
        assert row["speedup"] >= 3.0

    def test_unreliable_wall_flagged(self, monkeypatch):
        """A lane finishing below the clock floor is flagged, not
        reported as a confident events/sec figure."""
        import repro.bench as bench

        monkeypatch.setitem(
            bench._RUNNERS, "propagate",
            lambda smoke, backend: {"events": 5, "wall_s": 1e-7},
        )
        row = run_bench(["propagate"], smoke=True)["workloads"]["propagate"]
        assert row["unreliable"] is True
        assert row["events_per_sec"] > 0


class TestCli:
    def test_main_writes_trajectory_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_PERF.json"
        assert main(["propagate", "--smoke", "--out", str(out)]) == 0
        record = json.loads(out.read_text())
        assert record["bench"] == "snap1-hot-path"
        assert record["smoke"] is True
        assert "python" in record
        assert "propagate" in record["workloads"]
        printed = capsys.readouterr().out
        assert "ev/s" in printed
        assert str(out) in printed

    def test_default_out_is_repo_trajectory_file(self):
        assert DEFAULT_OUT == "BENCH_PERF.json"
