"""Benchmarks behind Figs. 18-21: sweeps over clusters and KB size."""

import pytest

from repro.apps.nlu import MemoryBasedParser, build_domain_kb, sentences
from repro.experiments import make_alpha_workload
from repro.machine import MachineConfig, SnapMachine, snap1_16cluster


class TestFig18ClusterSweep:
    @pytest.mark.parametrize("clusters", [1, 16])
    def test_parse_at_cluster_count(self, benchmark, domain_kb, clusters):
        config = MachineConfig(
            num_clusters=clusters, mus_per_cluster=2,
            partition_policy="semantic",
        )

        def run():
            machine = SnapMachine(domain_kb.network, config)
            parser = MemoryBasedParser(machine, domain_kb)
            return parser.parse(sentences()[1])

        result = benchmark(run)
        assert result.winner is not None

    def test_16_clusters_faster_than_1(self, benchmark):
        def run():
            times = {}
            for clusters in (1, 16):
                kb = build_domain_kb(total_nodes=2000)
                machine = SnapMachine(
                    kb.network,
                    MachineConfig(num_clusters=clusters, mus_per_cluster=2,
                                  partition_policy="semantic"),
                )
                result = MemoryBasedParser(machine, kb).parse(sentences()[1])
                times[clusters] = result.mb_time_us
            return times

        times = benchmark.pedantic(run, iterations=1, rounds=1)
        assert times[16] < times[1]


class TestFig19Fig20KbSweep:
    @pytest.mark.parametrize("nodes", [1000, 4000])
    def test_parse_at_kb_size(self, benchmark, nodes):
        kb = build_domain_kb(total_nodes=nodes)
        machine = SnapMachine(kb.network, snap1_16cluster())
        parser = MemoryBasedParser(machine, kb)
        result = benchmark(parser.parse, sentences()[1])
        assert result.winner is not None

    def test_propagation_events_grow_with_kb(self, benchmark):
        """Fig. 20 anchor: more KB -> more propagation events."""

        def run():
            events = {}
            for nodes in (1000, 4000):
                kb = build_domain_kb(total_nodes=nodes)
                machine = SnapMachine(kb.network, snap1_16cluster())
                result = MemoryBasedParser(machine, kb).parse(sentences()[1])
                events[nodes] = result.propagation_events
            return events

        events = benchmark.pedantic(run, iterations=1, rounds=1)
        assert events[4000] > events[1000]


class TestFig21Overheads:
    @pytest.mark.parametrize("clusters", [1, 16])
    def test_overhead_workload(self, benchmark, clusters):
        config = MachineConfig(num_clusters=clusters, mus_per_cluster=2)

        def run():
            workload = make_alpha_workload(32, path_length=8, collect=True)
            machine = SnapMachine(workload.network, config)
            return machine.run(workload.program)

        report = benchmark(run)
        if clusters == 1:
            assert report.overheads.communication == 0.0
        else:
            assert report.overheads.communication > 0.0
        # Fig. 21 anchor: collection dominates.
        breakdown = report.overheads.as_dict()
        assert max(breakdown, key=breakdown.get) == "collection"
